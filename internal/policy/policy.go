package policy

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"microadapt/internal/core"
	"microadapt/internal/heuristics"
	"microadapt/internal/hw"
)

// Env supplies the ambient context policy builders may need: the machine
// profile (heuristics thresholds are machine-relative), the base vw-greedy
// parameters (spec parameters override individual knobs), and the base
// seed of the deterministic random streams. The zero value is usable:
// machine1, the paper's default vw-greedy parameters, seed 0.
type Env struct {
	Machine *hw.Machine
	VW      core.VWParams
	Seed    int64
}

func (e Env) machine() *hw.Machine {
	if e.Machine == nil {
		return hw.Machine1()
	}
	return e.Machine
}

func (e Env) vw() core.VWParams {
	if e.VW.ExplorePeriod < 1 {
		return core.DefaultVWParams()
	}
	return e.VW
}

// rngStride spaces per-chooser seeds (a large odd multiplier, the PCG
// default): callers hand out consecutive Env seeds (one per session), so a
// stride of 1 would alias chooser j of one session with chooser j-1 of the
// next and correlate their exploration. Multiplication wraps; distinctness
// is preserved because the stride is odd.
const rngStride = 6364136223846793005

// rngSeq returns a deterministic sequence of per-chooser random number
// generators derived from the env seed. Giving every chooser its own
// stream (instead of sharing one *rand.Rand across the factory's
// choosers) keeps the factory itself safe to invoke from concurrently
// running sessions; each individual chooser remains single-threaded, as
// the Chooser contract requires.
func (e Env) rngSeq() func() *rand.Rand {
	var ctr atomic.Int64
	base := e.Seed
	return func() *rand.Rand {
		return rand.New(rand.NewSource(base + ctr.Add(1)*rngStride))
	}
}

// Definition describes one registered policy.
type Definition struct {
	// Name is the registry key, e.g. "vw-greedy".
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// ParamDoc documents the accepted spec parameters, e.g.
	// "explore=N,exploit=N,len=N".
	ParamDoc string
	// WarmStart reports whether the policy implements the WarmStarter and
	// Snapshotter capabilities, i.e. participates in cross-session
	// knowledge exchange.
	WarmStart bool

	build func(a *args, env Env) core.ChooserFactory
}

// aliases maps legacy spellings onto registry names.
var aliases = map[string]string{
	"vwgreedy":      "vw-greedy",
	"epsgreedy":     "eps-greedy",
	"epsfirst":      "eps-first",
	"epsdecreasing": "eps-decreasing",
	"roundrobin":    "round-robin",
	"ctxgreedy":     "ctx-greedy",
	"ctxvwgreedy":   "ctx-vw-greedy",
}

// registry holds every known policy, in presentation order.
var registry = []Definition{
	{
		Name:      "vw-greedy",
		Summary:   "the paper's algorithm: deterministic explore/exploit phases ranked by windowed cost (§3.2)",
		ParamDoc:  "explore=N,exploit=N,len=N,warmup=N,sweep=BOOL",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			p := env.vw()
			p.ExplorePeriod = a.Int("explore", p.ExplorePeriod)
			p.ExploitPeriod = a.Int("exploit", p.ExploitPeriod)
			p.ExploreLength = a.Int("len", p.ExploreLength)
			p.WarmupSkip = a.Int("warmup", p.WarmupSkip)
			p.InitialSweep = a.Bool("sweep", p.InitialSweep)
			a.check(p.ExplorePeriod >= 1, "explore", p.ExplorePeriod, ">= 1")
			a.check(p.ExploitPeriod >= 1, "exploit", p.ExploitPeriod, ">= 1")
			a.check(p.ExploreLength >= 1, "len", p.ExploreLength, ">= 1")
			a.check(p.WarmupSkip >= 0, "warmup", p.WarmupSkip, ">= 0")
			rng := env.rngSeq()
			return func(n int) core.Chooser { return core.NewVWGreedy(n, p, rng()) }
		},
	},
	{
		Name:      "eps-greedy",
		Summary:   "explore a random arm with probability eps, else exploit the all-history mean (linear regret)",
		ParamDoc:  "eps=F",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			eps := a.Float("eps", 0.05)
			a.check(eps >= 0 && eps <= 1, "eps", eps, "0..1")
			rng := env.rngSeq()
			return func(n int) core.Chooser { return core.NewEpsGreedy(n, eps, rng()) }
		},
	},
	{
		Name:      "eps-first",
		Summary:   "explore for the first eps*horizon calls, then commit (cannot adapt to change)",
		ParamDoc:  "eps=F,horizon=N",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			eps := a.Float("eps", 0.01)
			horizon := a.Int("horizon", 30000)
			a.check(eps >= 0 && eps <= 1, "eps", eps, "0..1")
			a.check(horizon >= 1, "horizon", horizon, ">= 1")
			rng := env.rngSeq()
			return func(n int) core.Chooser { return core.NewEpsFirst(n, eps, horizon, rng()) }
		},
	},
	{
		Name:      "eps-decreasing",
		Summary:   "eps-greedy with eps_t = min(1, c/t): logarithmic regret on stationary costs",
		ParamDoc:  "c=F",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			c := a.Float("c", 1.0)
			a.check(c >= 0, "c", c, ">= 0")
			rng := env.rngSeq()
			return func(n int) core.Chooser { return core.NewEpsDecreasing(n, c, rng()) }
		},
	},
	{
		Name:      "ucb1",
		Summary:   "lowest confidence bound over windowed costs (UCB1 adapted to non-stationary minimization)",
		ParamDoc:  "c=F,alpha=F",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			c := a.Float("c", 0.25)
			alpha := a.Float("alpha", 0.2)
			a.check(c > 0, "c", c, "> 0")
			a.check(alpha > 0 && alpha <= 1, "alpha", alpha, "0..1")
			return func(n int) core.Chooser { return core.NewUCB1(n, c, alpha) }
		},
	},
	{
		Name:      "thompson",
		Summary:   "Thompson sampling from a windowed Gaussian cost belief per arm",
		ParamDoc:  "alpha=F",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			alpha := a.Float("alpha", 0.2)
			a.check(alpha > 0 && alpha <= 1, "alpha", alpha, "0..1")
			rng := env.rngSeq()
			return func(n int) core.Chooser { return core.NewThompson(n, alpha, rng()) }
		},
	},
	{
		Name:      "ctx-greedy",
		Summary:   "contextual eps-greedy: an independent eps-greedy bandit per feature bucket (selectivity quartile x encoding)",
		ParamDoc:  "eps=F",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			eps := a.Float("eps", 0.05)
			a.check(eps >= 0 && eps <= 1, "eps", eps, "0..1")
			rng := env.rngSeq()
			return func(n int) core.Chooser {
				return core.NewContextual(n, func() core.Chooser { return core.NewEpsGreedy(n, eps, rng()) })
			}
		},
	},
	{
		Name:      "ctx-vw-greedy",
		Summary:   "contextual vw-greedy: the paper's algorithm bucketed by call features, one bandit per regime",
		ParamDoc:  "explore=N,exploit=N,len=N,warmup=N,sweep=BOOL",
		WarmStart: true,
		build: func(a *args, env Env) core.ChooserFactory {
			p := env.vw()
			p.ExplorePeriod = a.Int("explore", p.ExplorePeriod)
			p.ExploitPeriod = a.Int("exploit", p.ExploitPeriod)
			p.ExploreLength = a.Int("len", p.ExploreLength)
			p.WarmupSkip = a.Int("warmup", p.WarmupSkip)
			p.InitialSweep = a.Bool("sweep", p.InitialSweep)
			a.check(p.ExplorePeriod >= 1, "explore", p.ExplorePeriod, ">= 1")
			a.check(p.ExploitPeriod >= 1, "exploit", p.ExploitPeriod, ">= 1")
			a.check(p.ExploreLength >= 1, "len", p.ExploreLength, ">= 1")
			a.check(p.WarmupSkip >= 0, "warmup", p.WarmupSkip, ">= 0")
			rng := env.rngSeq()
			return func(n int) core.Chooser {
				return core.NewContextual(n, func() core.Chooser { return core.NewVWGreedy(n, p, rng()) })
			}
		},
	},
	{
		Name:     "heuristics",
		Summary:  "the hard-coded threshold rules of §4.2 (selectivity, density, bloom size); no learning",
		ParamDoc: "lo=F,hi=F,full=F",
		build: func(a *args, env Env) core.ChooserFactory {
			th := heuristics.Default()
			th.NoBranchLo = a.Float("lo", th.NoBranchLo)
			th.NoBranchHi = a.Float("hi", th.NoBranchHi)
			th.FullCompSel = a.Float("full", th.FullCompSel)
			a.check(th.NoBranchLo >= 0 && th.NoBranchLo <= th.NoBranchHi && th.NoBranchHi <= 1, "lo", th.NoBranchLo, "0 <= lo <= hi <= 1")
			a.check(th.FullCompSel >= 0 && th.FullCompSel <= 1, "full", th.FullCompSel, "0..1")
			return heuristics.Factory(env.machine(), th)
		},
	},
	{
		Name:     "fixed",
		Summary:  "always the same arm (clamped to the instance's flavor count); the baseline-build policy",
		ParamDoc: "arm=N",
		build: func(a *args, env Env) core.ChooserFactory {
			arm := a.Int("arm", 0)
			a.check(arm >= 0, "arm", arm, ">= 0")
			return func(n int) core.Chooser {
				a := arm
				if a >= n {
					a = n - 1
				}
				if a < 0 {
					a = 0
				}
				return core.NewFixed(a)
			}
		},
	},
	{
		Name:    "round-robin",
		Summary: "cycle deterministically through the arms; the worst-case reference policy",
		build: func(a *args, env Env) core.ChooserFactory {
			return func(n int) core.Chooser { return core.NewRoundRobin(n) }
		},
	},
}

// Definitions returns every registered policy, in presentation order.
func Definitions() []Definition {
	return append([]Definition(nil), registry...)
}

// Lookup resolves a registry name (or a legacy alias).
func Lookup(name string) (Definition, bool) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Definition{}, false
}

// Names returns the registered policy names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	sort.Strings(out)
	return out
}

// NewFactory parses a spec string and builds a chooser factory under env.
// The factory builds one fresh chooser per primitive instance, each with
// its own deterministic random stream derived from env.Seed, so a factory
// may serve concurrently running sessions; the choosers themselves are
// single-threaded, as the core.Chooser contract requires.
func NewFactory(spec string, env Env) (core.ChooserFactory, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewFactoryFromSpec(sp, env)
}

// NewFactoryFromSpec is NewFactory over an already parsed Spec.
func NewFactoryFromSpec(sp Spec, env Env) (core.ChooserFactory, error) {
	def, ok := Lookup(sp.Name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %v)", sp.Name, Names())
	}
	a := newArgs(sp)
	f := def.build(a, env)
	if err := a.finish(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustFactory is NewFactory for specs known at compile time; it panics on
// error (an experiment-harness wiring bug, not an input error).
func MustFactory(spec string, env Env) core.ChooserFactory {
	f, err := NewFactory(spec, env)
	if err != nil {
		panic("policy: " + err.Error())
	}
	return f
}
