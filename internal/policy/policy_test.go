package policy

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"microadapt/internal/core"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in     string
		name   string
		params map[string]string
		err    bool
	}{
		{in: "vw-greedy", name: "vw-greedy", params: map[string]string{}},
		{in: "  ucb1  ", name: "ucb1", params: map[string]string{}},
		{in: "vw-greedy:explore=1024,exploit=8,len=2", name: "vw-greedy",
			params: map[string]string{"explore": "1024", "exploit": "8", "len": "2"}},
		{in: "eps-greedy: eps = 0.05 ", name: "eps-greedy", params: map[string]string{"eps": "0.05"}},
		{in: "fixed:arm=3", name: "fixed", params: map[string]string{"arm": "3"}},
		{in: "", err: true},
		{in: ":a=1", err: true},
		{in: "x:novalue", err: true},
		{in: "x:=1", err: true},
		{in: "x:a=1,a=2", err: true},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q) should error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if sp.Name != c.name || len(sp.Params) != len(c.params) {
			t.Errorf("ParseSpec(%q) = %+v", c.in, sp)
		}
		for k, v := range c.params {
			if sp.Params[k] != v {
				t.Errorf("ParseSpec(%q) param %s = %q, want %q", c.in, k, sp.Params[k], v)
			}
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	sp, err := ParseSpec("vw-greedy:len=2,explore=1024")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.String(); got != "vw-greedy:explore=1024,len=2" {
		t.Errorf("canonical form = %q", got)
	}
	if got := (Spec{Name: "ucb1"}).String(); got != "ucb1" {
		t.Errorf("parameterless form = %q", got)
	}
}

func TestRegistryShape(t *testing.T) {
	want := []string{"vw-greedy", "eps-greedy", "eps-first", "eps-decreasing",
		"fixed", "round-robin", "heuristics", "ucb1", "thompson",
		"ctx-greedy", "ctx-vw-greedy"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d policies %v, want %d", len(names), names, len(want))
	}
	for _, w := range want {
		if _, ok := Lookup(w); !ok {
			t.Errorf("registry missing %q", w)
		}
	}
	// Legacy aliases resolve.
	for alias, canonical := range aliases {
		d, ok := Lookup(alias)
		if !ok || d.Name != canonical {
			t.Errorf("alias %q -> %q broken", alias, canonical)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown name should not resolve")
	}
}

// TestZeroChooseContextValidEverywhere pins the ChooseContext contract:
// the zero value means "no context" and every registry policy — contextual
// ones included — must choose a legal arm on it and accept the matching
// observation. This is what keeps trace replay and synthetic tests working
// against any policy a user configures.
func TestZeroChooseContextValidEverywhere(t *testing.T) {
	env := Env{Seed: 11}
	for _, def := range Definitions() {
		factory, err := NewFactory(def.Name, env)
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		ch := factory(3)
		for i := 0; i < 20; i++ {
			arm := ch.Choose(core.ChooseContext{})
			if arm < 0 || arm >= 3 {
				t.Fatalf("%s: Choose(zero context) = %d, want 0..2", def.Name, arm)
			}
			ch.Observe(core.Observation{Arm: arm, Tuples: 10, Cycles: float64(10 + arm)})
		}
	}
}

func TestNewFactoryErrors(t *testing.T) {
	if _, err := NewFactory("nope", Env{}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy error = %v", err)
	}
	if _, err := NewFactory("ucb1:bogus=1", Env{}); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("unknown parameter error = %v", err)
	}
	if _, err := NewFactory("ucb1:c=abc", Env{}); err == nil || !strings.Contains(err.Error(), "not a valid") {
		t.Errorf("bad value error = %v", err)
	}
	// Out-of-range values are errors, not silent defaults.
	for _, spec := range []string{
		"ucb1:c=-1", "ucb1:alpha=5", "thompson:alpha=0",
		"eps-greedy:eps=2", "eps-first:horizon=0", "eps-decreasing:c=-1",
		"vw-greedy:explore=0", "fixed:arm=-1", "heuristics:lo=0.9,hi=0.1",
	} {
		if _, err := NewFactory(spec, Env{}); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("NewFactory(%q) = %v, want out-of-range error", spec, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFactory on a bad spec should panic")
		}
	}()
	MustFactory("nope", Env{})
}

// TestWarmStartCapabilityDeclarations: the registry's WarmStart flag must
// match what the built choosers actually implement — a mismatch would make
// the service silently skip (or wrongly expect) knowledge exchange.
func TestWarmStartCapabilityDeclarations(t *testing.T) {
	for _, def := range Definitions() {
		ch := MustFactory(def.Name, Env{})(3)
		_, ws := ch.(core.WarmStarter)
		_, sn := ch.(core.Snapshotter)
		if def.WarmStart && (!ws || !sn) {
			t.Errorf("%s declares WarmStart but implements WarmStarter=%v Snapshotter=%v", def.Name, ws, sn)
		}
		if !def.WarmStart && (ws || sn) {
			t.Errorf("%s implements capabilities but does not declare WarmStart", def.Name)
		}
	}
}

// TestEveryPolicyStaysInRange is the registry-wide safety property: every
// policy, fuzzed over arm counts and random observations (including
// zero-tuple calls, missing call context, and random warm-start priors),
// only ever returns arms in [0, n) and never panics — including the n == 1
// degenerate every single-flavor primitive hits.
func TestEveryPolicyStaysInRange(t *testing.T) {
	specs := []string{
		"vw-greedy", "vw-greedy:explore=8,exploit=2,len=1,warmup=0,sweep=false",
		"eps-greedy", "eps-greedy:eps=1.0",
		"eps-first", "eps-first:eps=0.5,horizon=10",
		"eps-decreasing", "eps-decreasing:c=5",
		"fixed", "fixed:arm=99",
		"round-robin",
		"heuristics",
		"ucb1", "ucb1:c=0.5,alpha=0.9",
		"thompson", "thompson:alpha=0.9",
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for _, n := range []int{1, 2, 3, 8} {
				for trial := 0; trial < 3; trial++ {
					f := MustFactory(spec, Env{Seed: int64(trial)})
					ch := f(n)
					if ws, ok := ch.(core.WarmStarter); ok && trial == 1 {
						priors := make([]float64, n)
						for i := range priors {
							switch rng.Intn(4) {
							case 0:
								priors[i] = math.Inf(1)
							case 1:
								priors[i] = math.NaN()
							case 2:
								priors[i] = -5
							default:
								priors[i] = rng.Float64() * 100
							}
						}
						ws.SeedPriors(priors)
					}
					for call := 0; call < 500; call++ {
						arm := ch.Choose(core.ChooseContext{})
						if arm < 0 || arm >= n {
							t.Fatalf("%s over %d arms chose %d on call %d", spec, n, arm, call)
						}
						tuples := rng.Intn(3) * rng.Intn(64) // often 0
						ch.Observe(core.Observation{Arm: arm, Tuples: tuples, Cycles: rng.Float64() * 1000})
					}
					if name := ch.Name(); name == "" {
						t.Errorf("%s chooser has no name", spec)
					}
				}
			}
		})
	}
}

// TestLearningPoliciesFindBestArm: every warm-startable policy must
// converge on a clearly cheapest arm in a stationary scenario — the basic
// sanity bar for calling something a learning policy.
func TestLearningPoliciesFindBestArm(t *testing.T) {
	costs := []float64{9, 2, 7}
	for _, def := range Definitions() {
		if !def.WarmStart {
			continue
		}
		ch := MustFactory(def.Name, Env{Seed: 3})(len(costs))
		use := make([]int, len(costs))
		for call := 0; call < 4000; call++ {
			arm := ch.Choose(core.ChooseContext{})
			use[arm]++
			ch.Observe(core.Observation{Arm: arm, Tuples: 100, Cycles: costs[arm] * 100})
		}
		if use[1] < 2400 {
			t.Errorf("%s used the best arm %d/4000 times, want dominant (use=%v)", def.Name, use[1], use)
		}
	}
}

// TestWarmStartSkipsKnownArms: seeding full priors must steer every
// warm-startable policy to the known-best arm essentially immediately.
func TestWarmStartSkipsKnownArms(t *testing.T) {
	priors := []float64{9, 2, 7}
	for _, def := range Definitions() {
		if !def.WarmStart {
			continue
		}
		ch := MustFactory(def.Name, Env{Seed: 4})(len(priors))
		ch.(core.WarmStarter).SeedPriors(priors)
		use := make([]int, len(priors))
		for call := 0; call < 400; call++ {
			arm := ch.Choose(core.ChooseContext{})
			use[arm]++
			ch.Observe(core.Observation{Arm: arm, Tuples: 100, Cycles: priors[arm] * 100})
		}
		if use[1] < 300 {
			t.Errorf("%s with full priors used best arm only %d/400 (use=%v)", def.Name, use[1], use)
		}
	}
}

// TestSeedPriorsNeverDisplaceLiveKnowledge: SeedPriors has one semantics
// across every WarmStarter — priors fill gaps, they never overwrite costs
// the chooser measured itself, even when (mis)called mid-session.
func TestSeedPriorsNeverDisplaceLiveKnowledge(t *testing.T) {
	for _, def := range Definitions() {
		if !def.WarmStart {
			continue
		}
		ch := MustFactory(def.Name, Env{Seed: 6})(2)
		for call := 0; call < 400; call++ {
			arm := ch.Choose(core.ChooseContext{})
			ch.Observe(core.Observation{Arm: arm, Tuples: 100, Cycles: []float64{2, 8}[arm] * 100})
		}
		before, live := ch.(core.Snapshotter).Snapshot()
		ch.(core.WarmStarter).SeedPriors([]float64{1000, 0.01}) // absurd stale cache
		after, _ := ch.(core.Snapshotter).Snapshot()
		for i := range before {
			if live[i] && after[i] != before[i] {
				t.Errorf("%s: late prior displaced live cost of arm %d: %v -> %v",
					def.Name, i, before[i], after[i])
			}
		}
	}
}

// TestSnapshotDoesNotEchoPriors: arms known only through SeedPriors must
// come back from Snapshot with measured=false, for every warm-startable
// policy — the invariant the shared flavor cache depends on.
func TestSnapshotDoesNotEchoPriors(t *testing.T) {
	for _, def := range Definitions() {
		if !def.WarmStart {
			continue
		}
		ch := MustFactory(def.Name, Env{Seed: 5})(3)
		ch.(core.WarmStarter).SeedPriors([]float64{5, 1, 9})
		// Observe only arm 1 (what every policy should be choosing).
		for call := 0; call < 50; call++ {
			ch.Observe(core.Observation{Arm: 1, Tuples: 100, Cycles: 100})
		}
		costs, measured := ch.(core.Snapshotter).Snapshot()
		if len(costs) != 3 || len(measured) != 3 {
			t.Fatalf("%s snapshot shape %d/%d", def.Name, len(costs), len(measured))
		}
		if !measured[1] {
			t.Errorf("%s: the observed arm must be marked measured", def.Name)
		}
		if measured[0] || measured[2] {
			t.Errorf("%s: seeded-but-unobserved arms marked measured (%v)", def.Name, measured)
		}
	}
}
