package vector

import "testing"

func selBatch() *Batch {
	a := FromI64([]int64{10, 11, 12, 13, 14, 15})
	s := FromStr([]string{"a", "b", "c", "d", "e", "f"})
	return &Batch{N: 6, Sel: []int32{1, 3, 5}, Cols: []*Vector{a, s}}
}

func TestCompactIntoFresh(t *testing.T) {
	out := selBatch().CompactInto(nil)
	if out.N != 3 || out.Sel != nil {
		t.Fatalf("compacted N=%d Sel=%v", out.N, out.Sel)
	}
	if out.Cols[0].I64()[0] != 11 || out.Cols[0].I64()[2] != 15 {
		t.Errorf("i64 compact wrong: %v", out.Cols[0].I64()[:3])
	}
	if out.Cols[1].Str()[1] != "d" {
		t.Errorf("str compact wrong: %v", out.Cols[1].Str()[:3])
	}
}

func TestCompactIntoReusesDestination(t *testing.T) {
	dst := selBatch().CompactInto(nil)
	v0, v1 := dst.Cols[0], dst.Cols[1]
	b2 := &Batch{N: 4, Sel: []int32{0, 2}, Cols: []*Vector{
		FromI64([]int64{1, 2, 3, 4}),
		FromStr([]string{"w", "x", "y", "z"}),
	}}
	out := b2.CompactInto(dst)
	if out != dst || out.Cols[0] != v0 || out.Cols[1] != v1 {
		t.Error("CompactInto allocated fresh vectors despite sufficient capacity")
	}
	if out.N != 2 || out.Cols[0].I64()[0] != 1 || out.Cols[0].I64()[1] != 3 {
		t.Errorf("reused compact wrong: N=%d %v", out.N, out.Cols[0].I64()[:2])
	}
	if out.Cols[1].Str()[1] != "y" {
		t.Errorf("reused str compact wrong: %v", out.Cols[1].Str()[:2])
	}
}

func TestCompactIntoGrowsUndersizedDestination(t *testing.T) {
	dst := (&Batch{N: 2, Sel: []int32{0}, Cols: []*Vector{FromI64([]int64{7, 8})}}).CompactInto(nil)
	big := &Batch{N: 5, Cols: []*Vector{FromI64([]int64{1, 2, 3, 4, 5})}}
	out := big.CompactInto(dst)
	if out.N != 5 || out.Cols[0].Len() != 5 || out.Cols[0].I64()[4] != 5 {
		t.Errorf("grown compact wrong: N=%d len=%d", out.N, out.Cols[0].Len())
	}
}

func TestCompactIntoNoSelectionCopies(t *testing.T) {
	src := FromI64([]int64{1, 2, 3})
	b := &Batch{N: 3, Cols: []*Vector{src}}
	out := b.CompactInto(nil)
	if out.Cols[0] == src {
		t.Fatal("CompactInto aliased the source vector")
	}
	out.Cols[0].I64()[0] = 99
	if src.I64()[0] != 1 {
		t.Error("mutation leaked into source")
	}
	// Compact, by contrast, stays zero-copy for nil selections.
	if b.Compact() != b {
		t.Error("Compact copied a selection-free batch")
	}
}
