// Package vector provides the typed value vectors, selection vectors and
// batches that form the data plane of the vectorized executor.
//
// A Vector is a fixed-capacity, variable-length array of values of a single
// Type. Primitives operate on whole vectors; an optional selection vector
// (a []int32 of qualifying positions) restricts which positions are live,
// mirroring the Vectorwise design described in the paper (Listing 4,
// Figure 7).
package vector

import "fmt"

// DefaultSize is the default number of tuples per vector. Vectorwise uses
// roughly 1000; experiments at reduced TPC-H scale factors use smaller
// vectors so primitive-instance call counts stay comparable to the paper.
const DefaultSize = 1024

// Type enumerates the value types supported by the engine. The names follow
// the paper's nomenclature: schr (short, 16-bit), sint (int, 32-bit),
// slng (long, 64-bit), plus float64 and string.
type Type uint8

const (
	// Invalid is the zero Type; it is never valid in a live vector.
	Invalid Type = iota
	// I16 is a 16-bit signed integer ("schr" in the paper).
	I16
	// I32 is a 32-bit signed integer ("sint" in the paper). Dates are
	// stored as I32 days since epoch.
	I32
	// I64 is a 64-bit signed integer ("slng" in the paper).
	I64
	// F64 is a 64-bit float.
	F64
	// Str is a Go string.
	Str
)

// String returns the paper-style name of the type.
func (t Type) String() string {
	switch t {
	case I16:
		return "schr"
	case I32:
		return "sint"
	case I64:
		return "slng"
	case F64:
		return "dbl"
	case Str:
		return "str"
	default:
		return "invalid"
	}
}

// Width returns the size of one value in bytes (16 for strings, as an
// approximation of a pointer+length header used by the cost model).
func (t Type) Width() int {
	switch t {
	case I16:
		return 2
	case I32:
		return 4
	case I64:
		return 8
	case F64:
		return 8
	case Str:
		return 16
	default:
		return 0
	}
}

// Vector is a typed array of values. Exactly one of the typed slices is
// non-nil, matching typ. A Vector has a length (live tuples) and a capacity
// (allocated tuples).
type Vector struct {
	typ Type
	n   int
	i16 []int16
	i32 []int32
	i64 []int64
	f64 []float64
	str []string
}

// New allocates a vector of the given type and capacity with length 0.
func New(t Type, capacity int) *Vector {
	v := &Vector{typ: t}
	switch t {
	case I16:
		v.i16 = make([]int16, capacity)
	case I32:
		v.i32 = make([]int32, capacity)
	case I64:
		v.i64 = make([]int64, capacity)
	case F64:
		v.f64 = make([]float64, capacity)
	case Str:
		v.str = make([]string, capacity)
	default:
		panic(fmt.Sprintf("vector.New: invalid type %d", t))
	}
	return v
}

// FromI16 wraps an existing slice without copying; length = len(vals).
func FromI16(vals []int16) *Vector { return &Vector{typ: I16, n: len(vals), i16: vals} }

// FromI32 wraps an existing slice without copying; length = len(vals).
func FromI32(vals []int32) *Vector { return &Vector{typ: I32, n: len(vals), i32: vals} }

// FromI64 wraps an existing slice without copying; length = len(vals).
func FromI64(vals []int64) *Vector { return &Vector{typ: I64, n: len(vals), i64: vals} }

// FromF64 wraps an existing slice without copying; length = len(vals).
func FromF64(vals []float64) *Vector { return &Vector{typ: F64, n: len(vals), f64: vals} }

// FromStr wraps an existing slice without copying; length = len(vals).
func FromStr(vals []string) *Vector { return &Vector{typ: Str, n: len(vals), str: vals} }

// ConstI32 builds a single-value I32 vector, used for _val (constant)
// primitive parameters.
func ConstI32(val int32) *Vector { return FromI32([]int32{val}) }

// ConstI16 builds a single-value I16 vector.
func ConstI16(val int16) *Vector { return FromI16([]int16{val}) }

// ConstI64 builds a single-value I64 vector.
func ConstI64(val int64) *Vector { return FromI64([]int64{val}) }

// ConstF64 builds a single-value F64 vector.
func ConstF64(val float64) *Vector { return FromF64([]float64{val}) }

// ConstStr builds a single-value Str vector.
func ConstStr(val string) *Vector { return FromStr([]string{val}) }

// Type returns the element type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of live tuples.
func (v *Vector) Len() int { return v.n }

// SetLen sets the number of live tuples. It panics if n exceeds capacity.
func (v *Vector) SetLen(n int) {
	if n > v.Cap() {
		panic(fmt.Sprintf("vector.SetLen: %d exceeds capacity %d", n, v.Cap()))
	}
	v.n = n
}

// Cap returns the allocated capacity in tuples.
func (v *Vector) Cap() int {
	switch v.typ {
	case I16:
		return len(v.i16)
	case I32:
		return len(v.i32)
	case I64:
		return len(v.i64)
	case F64:
		return len(v.f64)
	case Str:
		return len(v.str)
	default:
		return 0
	}
}

// I16 returns the full-capacity backing slice; it panics on type mismatch.
func (v *Vector) I16() []int16 {
	v.check(I16)
	return v.i16
}

// I32 returns the full-capacity backing slice; it panics on type mismatch.
func (v *Vector) I32() []int32 {
	v.check(I32)
	return v.i32
}

// I64 returns the full-capacity backing slice; it panics on type mismatch.
func (v *Vector) I64() []int64 {
	v.check(I64)
	return v.i64
}

// F64 returns the full-capacity backing slice; it panics on type mismatch.
func (v *Vector) F64() []float64 {
	v.check(F64)
	return v.f64
}

// Str returns the full-capacity backing slice; it panics on type mismatch.
func (v *Vector) Str() []string {
	v.check(Str)
	return v.str
}

func (v *Vector) check(t Type) {
	if v.typ != t {
		panic(fmt.Sprintf("vector: have %s, want %s", v.typ, t))
	}
}

// Slice returns a zero-copy view of tuples [lo, hi).
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{typ: v.typ, n: hi - lo}
	switch v.typ {
	case I16:
		out.i16 = v.i16[lo:hi]
	case I32:
		out.i32 = v.i32[lo:hi]
	case I64:
		out.i64 = v.i64[lo:hi]
	case F64:
		out.f64 = v.f64[lo:hi]
	case Str:
		out.str = v.str[lo:hi]
	}
	return out
}

// Clone returns a deep copy of the live prefix of v.
func (v *Vector) Clone() *Vector {
	out := New(v.typ, v.n)
	out.n = v.n
	switch v.typ {
	case I16:
		copy(out.i16, v.i16[:v.n])
	case I32:
		copy(out.i32, v.i32[:v.n])
	case I64:
		copy(out.i64, v.i64[:v.n])
	case F64:
		copy(out.f64, v.f64[:v.n])
	case Str:
		copy(out.str, v.str[:v.n])
	}
	return out
}

// GetI64 returns tuple i widened to int64 for any integer-typed vector.
// It is a convenience for tests and result verification, not a hot path.
func (v *Vector) GetI64(i int) int64 {
	switch v.typ {
	case I16:
		return int64(v.i16[i])
	case I32:
		return int64(v.i32[i])
	case I64:
		return v.i64[i]
	default:
		panic("vector.GetI64: not an integer vector")
	}
}

// GetF64 returns tuple i as float64 for numeric vectors.
func (v *Vector) GetF64(i int) float64 {
	switch v.typ {
	case I16:
		return float64(v.i16[i])
	case I32:
		return float64(v.i32[i])
	case I64:
		return float64(v.i64[i])
	case F64:
		return v.f64[i]
	default:
		panic("vector.GetF64: not a numeric vector")
	}
}

// GetStr returns tuple i of a string vector.
func (v *Vector) GetStr(i int) string {
	v.check(Str)
	return v.str[i]
}
