package vector

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	cases := []struct {
		typ   Type
		width int
		name  string
	}{
		{I16, 2, "schr"},
		{I32, 4, "sint"},
		{I64, 8, "slng"},
		{F64, 8, "dbl"},
		{Str, 16, "str"},
	}
	for _, c := range cases {
		v := New(c.typ, 8)
		if v.Type() != c.typ {
			t.Errorf("%s: type mismatch", c.name)
		}
		if v.Len() != 0 || v.Cap() != 8 {
			t.Errorf("%s: len/cap = %d/%d, want 0/8", c.name, v.Len(), v.Cap())
		}
		if c.typ.Width() != c.width {
			t.Errorf("%s: width = %d, want %d", c.name, c.typ.Width(), c.width)
		}
		if c.typ.String() != c.name {
			t.Errorf("type name = %s, want %s", c.typ.String(), c.name)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("I32 accessor on I64 vector did not panic")
		}
	}()
	New(I64, 4).I32()
}

func TestSetLenBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetLen beyond capacity did not panic")
		}
	}()
	New(I32, 4).SetLen(5)
}

func TestFromWrapsWithoutCopy(t *testing.T) {
	data := []int32{1, 2, 3}
	v := FromI32(data)
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
	v.I32()[0] = 99
	if data[0] != 99 {
		t.Error("FromI32 copied the slice")
	}
}

func TestSliceZeroCopy(t *testing.T) {
	v := FromI64([]int64{10, 20, 30, 40})
	s := v.Slice(1, 3)
	if s.Len() != 2 || s.I64()[0] != 20 || s.I64()[1] != 30 {
		t.Fatalf("slice contents wrong: %v", s.I64())
	}
	s.I64()[0] = 99
	if v.I64()[1] != 99 {
		t.Error("Slice copied the data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := FromStr([]string{"a", "b"})
	c := v.Clone()
	c.Str()[0] = "z"
	if v.Str()[0] != "a" {
		t.Error("Clone aliases the original")
	}
}

func TestGetHelpers(t *testing.T) {
	if got := FromI16([]int16{-5}).GetI64(0); got != -5 {
		t.Errorf("GetI64(i16) = %d", got)
	}
	if got := FromI32([]int32{7}).GetF64(0); got != 7 {
		t.Errorf("GetF64(i32) = %v", got)
	}
	if got := FromStr([]string{"x"}).GetStr(0); got != "x" {
		t.Errorf("GetStr = %q", got)
	}
}

func TestConstVectors(t *testing.T) {
	if ConstI32(4).Len() != 1 || ConstI32(4).I32()[0] != 4 {
		t.Error("ConstI32 wrong")
	}
	if ConstStr("q").GetStr(0) != "q" {
		t.Error("ConstStr wrong")
	}
	if ConstF64(2.5).F64()[0] != 2.5 {
		t.Error("ConstF64 wrong")
	}
	if ConstI64(-1).I64()[0] != -1 {
		t.Error("ConstI64 wrong")
	}
	if ConstI16(3).I16()[0] != 3 {
		t.Error("ConstI16 wrong")
	}
}

func TestBatchLiveAndSelectivity(t *testing.T) {
	b := NewBatch(FromI32([]int32{1, 2, 3, 4}))
	if b.Live() != 4 || b.Selectivity() != 1 {
		t.Errorf("dense live/sel = %d/%v", b.Live(), b.Selectivity())
	}
	b.Sel = []int32{0, 2}
	if b.Live() != 2 || b.Selectivity() != 0.5 {
		t.Errorf("selected live/sel = %d/%v", b.Live(), b.Selectivity())
	}
}

func TestBatchCompact(t *testing.T) {
	b := NewBatch(FromI32([]int32{10, 20, 30, 40}), FromStr([]string{"a", "b", "c", "d"}))
	b.Sel = []int32{1, 3}
	c := b.Compact()
	if c.Sel != nil || c.N != 2 {
		t.Fatalf("compact: sel=%v n=%d", c.Sel, c.N)
	}
	if c.Cols[0].I32()[0] != 20 || c.Cols[0].I32()[1] != 40 {
		t.Errorf("compact col0 = %v", c.Cols[0].I32())
	}
	if c.Cols[1].Str()[0] != "b" || c.Cols[1].Str()[1] != "d" {
		t.Errorf("compact col1 = %v", c.Cols[1].Str())
	}
}

func TestBatchCompactNoSelIsIdentity(t *testing.T) {
	b := NewBatch(FromI32([]int32{1}))
	if b.Compact() != b {
		t.Error("Compact without selection should return the batch itself")
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := Schema{{Name: "a", Type: I32}, {Name: "b", Type: Str}}
	if s.IndexOf("b") != 1 || s.IndexOf("z") != -1 {
		t.Error("IndexOf wrong")
	}
	if s.MustIndexOf("a") != 0 {
		t.Error("MustIndexOf wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndexOf on missing column did not panic")
		}
	}()
	s.MustIndexOf("zzz")
}

func TestIntersectSel(t *testing.T) {
	old := Sel{3, 5, 9, 12}
	sub := Sel{0, 2, 3}
	got := IntersectSel(old, sub)
	want := Sel{3, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if IntersectSel(nil, sub)[1] != 2 {
		t.Error("nil old should pass sub through")
	}
}

// Property: Compact preserves exactly the selected values, in order.
func TestCompactProperty(t *testing.T) {
	f := func(vals []int64, picks []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		sel := Sel{} // empty but non-nil: an empty selection, not "all live"
		for _, p := range picks {
			sel = append(sel, int32(int(p)%len(vals)))
		}
		// Selection vectors are ascending by contract.
		for i := 1; i < len(sel); i++ {
			if sel[i] < sel[i-1] {
				sel[i] = sel[i-1]
			}
		}
		b := NewBatch(FromI64(vals))
		b.Sel = sel
		c := b.Compact()
		if c.N != len(sel) {
			return false
		}
		for j, i := range sel {
			if c.Cols[0].I64()[j] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
