package vector

// Sel is a selection vector: the positions of qualifying tuples within a
// batch, in ascending order. A nil Sel means "all tuples qualify".
type Sel = []int32

// Col describes one column of a batch schema.
type Col struct {
	Name string
	Type Type
}

// Schema is an ordered set of named, typed columns.
type Schema []Col

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndexOf returns the position of the named column and panics if absent.
func (s Schema) MustIndexOf(name string) int {
	if i := s.IndexOf(name); i >= 0 {
		return i
	}
	panic("vector: schema has no column " + name)
}

// Batch is a horizontal slice of a relation: N tuples across a set of
// column vectors, with an optional selection vector marking the live subset.
type Batch struct {
	N    int       // total tuples in the vectors (selected or not)
	Sel  Sel       // live positions; nil means all N are live
	Cols []*Vector // one vector per schema column
}

// Live returns the number of live (selected) tuples.
func (b *Batch) Live() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Selectivity returns the fraction of live tuples, in [0,1]. An empty batch
// reports 1.
func (b *Batch) Selectivity() float64 {
	if b.N == 0 {
		return 1
	}
	return float64(b.Live()) / float64(b.N)
}

// NewBatch builds a batch over the given columns; all columns must have the
// same length.
func NewBatch(cols ...*Vector) *Batch {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != n {
				panic("vector.NewBatch: column length mismatch")
			}
		}
	}
	return &Batch{N: n, Cols: cols}
}

// Compact materializes the selection: it copies the live tuples of every
// column to the front and clears Sel. It allocates fresh vectors; use
// CompactInto to reuse a destination batch across a drain loop.
func (b *Batch) Compact() *Batch {
	if b.Sel == nil {
		return b
	}
	return b.CompactInto(nil)
}

// CompactInto compacts b into dst, reusing dst's vectors whenever their type
// matches and their capacity holds the live count — the reusable-destination
// variant of Compact for drain loops that process one compacted batch at a
// time instead of retaining them all. A nil dst (or one with missing /
// undersized / wrongly-typed columns) allocates what it needs. It returns
// the destination batch; b itself is never modified. When b carries no
// selection the copy is still performed, so the returned batch never aliases
// b's vectors.
func (b *Batch) CompactInto(dst *Batch) *Batch {
	k := b.Live()
	if dst == nil {
		dst = &Batch{}
	}
	dst.N = k
	dst.Sel = nil
	if len(dst.Cols) != len(b.Cols) {
		dst.Cols = make([]*Vector, len(b.Cols))
	}
	for ci, c := range b.Cols {
		nc := dst.Cols[ci]
		if nc == nil || nc.Type() != c.Type() || nc.Cap() < k {
			nc = New(c.Type(), k)
			dst.Cols[ci] = nc
		}
		nc.SetLen(k)
		if b.Sel == nil {
			switch c.Type() {
			case I16:
				copy(nc.I16()[:k], c.I16()[:k])
			case I32:
				copy(nc.I32()[:k], c.I32()[:k])
			case I64:
				copy(nc.I64()[:k], c.I64()[:k])
			case F64:
				copy(nc.F64()[:k], c.F64()[:k])
			case Str:
				copy(nc.Str()[:k], c.Str()[:k])
			}
			continue
		}
		switch c.Type() {
		case I16:
			src, d := c.I16(), nc.I16()
			for j, i := range b.Sel {
				d[j] = src[i]
			}
		case I32:
			src, d := c.I32(), nc.I32()
			for j, i := range b.Sel {
				d[j] = src[i]
			}
		case I64:
			src, d := c.I64(), nc.I64()
			for j, i := range b.Sel {
				d[j] = src[i]
			}
		case F64:
			src, d := c.F64(), nc.F64()
			for j, i := range b.Sel {
				d[j] = src[i]
			}
		case Str:
			src, d := c.Str(), nc.Str()
			for j, i := range b.Sel {
				d[j] = src[i]
			}
		}
	}
	return dst
}

// IntersectSel combines an existing selection with a new selection expressed
// over the positions of the old one (the common composition produced by
// selection primitives running under a selection vector). If old is nil the
// new selection is returned as-is.
func IntersectSel(old Sel, sub Sel) Sel {
	if old == nil {
		return sub
	}
	out := make(Sel, len(sub))
	for j, i := range sub {
		out[j] = old[i]
	}
	return out
}
