// Package service runs many TPC-H queries concurrently over one shared
// immutable database, one session per query, with a shared flavor-knowledge
// cache that lets fresh sessions warm-start their choosers from per-flavor
// costs observed by earlier queries — the cross-run sharing of
// adaptive-tuning state that Cuttlefish (Kaftan et al., 2018) showed
// amortizes the bandit's cold-start exploration tax. Knowledge exchange is
// policy-agnostic: the cache talks to choosers only through the
// core.Snapshotter (export) and core.WarmStarter (import) capabilities, so
// every policy in the registry that implements them — vw-greedy, the
// ε-strategies, ucb1, thompson — warm-starts the same way.
package service

import (
	"math"
	"sort"
	"sync"

	"microadapt/internal/core"
	"microadapt/internal/primitive"
)

// ewmaAlpha is the weight of the newest observation when merging knowledge
// into the cache. It is deliberately recent-biased for the same reason
// vw-greedy ranks arms by their latest measurement window instead of an
// all-history mean (§3.2): flavor costs are non-stationary, so a stale
// global mean would anchor new sessions to obsolete choices.
const ewmaAlpha = 0.5

// flavorKnowledge is the cached estimate for one flavor of one instance.
type flavorKnowledge struct {
	cost    float64 // EWMA cycles/tuple
	samples int64   // sessions that contributed
}

// FlavorCache is the shared cross-session knowledge store: for every
// primitive-instance key (see primitive.InstanceKey) it remembers the
// recently observed cost of each flavor, keyed by flavor *name* so sessions
// with different registered flavor sets can still exchange knowledge.
//
// Concurrency: a single RWMutex guards the two-level map. Readers (session
// construction) and writers (post-query harvest) are both rare relative to
// primitive calls — a session touches the cache once per instance, not once
// per call — so a plain mutex is cheap; the adaptive hot path inside
// sessions never takes it.
type FlavorCache struct {
	mu      sync.RWMutex
	entries map[string]map[string]*flavorKnowledge
}

// NewFlavorCache returns an empty cache.
func NewFlavorCache() *FlavorCache {
	return &FlavorCache{entries: make(map[string]map[string]*flavorKnowledge)}
}

// Observe merges one measured flavor cost (cycles/tuple) into the cache.
// Non-finite and negative costs are rejected at the door, and the merged
// estimate is re-checked after the EWMA: no code path may leave a stored
// cost non-finite, or every later warm start under this key would seed a
// poisoned prior (readers guard too, but the invariant belongs here).
func (c *FlavorCache) Observe(key, flavor string, cost float64) {
	if !finiteCost(cost) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = make(map[string]*flavorKnowledge)
		c.entries[key] = e
	}
	k := e[flavor]
	if k == nil {
		e[flavor] = &flavorKnowledge{cost: cost, samples: 1}
		return
	}
	merged := (1-ewmaAlpha)*k.cost + ewmaAlpha*cost
	if !finiteCost(merged) {
		// A stored MaxFloat64-adjacent estimate can push the EWMA over the
		// float64 horizon; fall back to the newest observation.
		merged = cost
	}
	k.cost = merged
	k.samples++
}

// finiteCost reports whether a cost is storable knowledge.
func finiteCost(cost float64) bool {
	return !math.IsNaN(cost) && !math.IsInf(cost, 0) && cost >= 0
}

// Priors returns per-arm prior costs for an instance whose flavors are
// named flavorNames (in arm order), in the exact shape
// core.WarmStarter.SeedPriors accepts: cached cost where known, +Inf where
// the cache has nothing. Entries whose stored cost is somehow non-finite
// are treated as unknown rather than handed out as priors. The second
// result says whether any arm had a prior.
func (c *FlavorCache) Priors(key string, flavorNames []string) ([]float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e := c.entries[key]
	if e == nil {
		return nil, false
	}
	priors := make([]float64, len(flavorNames))
	any := false
	for i, name := range flavorNames {
		if k, ok := e[name]; ok && finiteCost(k.cost) {
			priors[i] = k.cost
			any = true
		} else {
			priors[i] = math.Inf(1)
		}
	}
	return priors, any
}

// Harvest extracts the flavor knowledge a finished session learned and
// merges it into the cache. Instances with a single flavor carry no choice
// and are skipped. Knowledge flows exclusively through the core.Snapshotter
// capability — the policy's own notion of current per-arm truth — so any
// registered policy that snapshots participates; policies without the
// capability (fixed, round-robin, heuristics) simply contribute nothing.
// Only arms the session measured itself are published: a seeded arm the
// policy never ran still carries its prior in the snapshot, and
// re-observing it would EWMA the cache's own (possibly stale) value back
// in as if it were fresh evidence. Harvest walks the session's own
// instances plus those of every pipeline-fragment session it spawned; the
// fragments' partition-tagged labels collapse to the serial plan's
// instance keys, so P partition bandits merge into one cache entry.
func (c *FlavorCache) Harvest(s *core.Session) {
	for _, inst := range s.AllInstances() {
		if len(inst.Prim.Flavors) <= 1 {
			continue
		}
		sn, ok := inst.Chooser().(core.Snapshotter)
		if !ok {
			continue
		}
		costs, measured := sn.Snapshot()
		key := primitive.InstanceKeyOf(inst)
		for i, cost := range costs {
			if i < len(inst.Prim.Flavors) && i < len(measured) && measured[i] {
				c.Observe(key, inst.Prim.Flavors[i].Name, cost)
			}
		}
	}
	// Operator-level decisions harvest identically: same capability, same
	// name-keyed entries, under "decision:<name>@<label>" keys — which is
	// all it takes for join strategies and sizings to ride the existing
	// warm-start and gossip paths.
	for _, d := range s.AllDecisions() {
		if len(d.Arms) <= 1 {
			continue
		}
		sn, ok := d.Chooser().(core.Snapshotter)
		if !ok {
			continue
		}
		costs, measured := sn.Snapshot()
		key := primitive.InstanceKey(core.DecisionSig(d.Name), d.Label)
		for i, cost := range costs {
			if i < len(d.Arms) && i < len(measured) && measured[i] {
				c.Observe(key, d.Arms[i], cost)
			}
		}
	}
}

// Len returns the number of instance keys known to the cache.
func (c *FlavorCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Keys returns the known instance keys, sorted (for reports and tests).
func (c *FlavorCache) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BestFlavor returns the cheapest known flavor name for an instance key
// and its cached cost, or ("", +Inf) when the key is unknown. Entries with
// a non-finite stored cost are skipped.
func (c *FlavorCache) BestFlavor(key string) (string, float64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best, bestCost := "", math.Inf(1)
	for name, k := range c.entries[key] {
		if !finiteCost(k.cost) {
			continue
		}
		if k.cost < bestCost || (k.cost == bestCost && (best == "" || name < best)) {
			best, bestCost = name, k.cost
		}
	}
	return best, bestCost
}
