package service

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/plan"
	"microadapt/internal/policy"
	"microadapt/internal/primitive"
	"microadapt/internal/tpch"
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the size of the worker pool (default: GOMAXPROCS).
	Workers int
	// Flavors selects the registered flavor sets (default: Everything).
	Flavors primitive.Options
	// Machine is the virtual machine profile queries run on.
	Machine *hw.Machine
	// VectorSize is tuples per vector (default 128, the bench default).
	VectorSize int
	// Policy is the flavor-selection policy spec every session uses,
	// resolved through the policy registry (default "vw-greedy"; e.g.
	// "ucb1:c=2" or "eps-greedy:eps=0.05").
	Policy string
	// VW are the base vw-greedy parameters (the "vw-greedy" policy reads
	// them; spec parameters override individual knobs).
	VW core.VWParams
	// WarmStart seeds fresh sessions' choosers from the shared cache via
	// the core.WarmStarter capability; policies without the capability run
	// cold regardless.
	WarmStart bool
	// PipelineParallelism is the intra-query fan-out P: partitionable
	// plans split their scan-heavy pipeline into P morsel streams, each
	// running on its own goroutine with its own fragment session and
	// choosers (engine.ParallelPipeline). 0 or 1 keeps queries serial.
	// Fragment sessions follow WarmStart exactly like query sessions, and
	// their learned knowledge harvests into the shared cache under the
	// same partition-free instance keys as the serial plan's.
	PipelineParallelism int
	// EncodedStorage makes the service's database resident in compressed
	// columnar form at construction (idempotent when the caller already
	// encoded it): scans then run through the adaptive decompression
	// flavor family and results stay bit-identical to flat storage. Note
	// that New encodes the *given* DB in place — the encoded form is a
	// property of the shared database, not of one service.
	EncodedStorage bool
	// Seed is the base of the deterministic per-session seed sequence.
	Seed int64
}

// DefaultConfig returns a ready-to-run service configuration.
func DefaultConfig() Config {
	return Config{
		Workers:    runtime.GOMAXPROCS(0),
		Flavors:    primitive.Everything(),
		Machine:    hw.Machine1(),
		VectorSize: 128,
		Policy:     "vw-greedy",
		VW:         core.VWParams{ExplorePeriod: 512, ExploitPeriod: 8, ExploreLength: 1, WarmupSkip: 2, InitialSweep: true},
		WarmStart:  true,
		Seed:       1,
	}
}

// Service executes TPC-H queries concurrently over one shared immutable
// database. Each query runs in a fresh single-threaded core.Session (the
// engine and choosers are not thread-safe, so sessions are never shared
// across goroutines); what *is* shared is read-only or explicitly guarded:
//
//   - db: immutable after generation, read concurrently by all scans;
//   - dict: the primitive dictionary, RWMutex-guarded and read-only here;
//   - cache: the flavor-knowledge store, RWMutex-guarded, touched once per
//     instance at session construction (priors) and once per query at the
//     end (harvest) — never on the per-call hot path.
//
// The session-per-query model mirrors a query stream from many clients:
// without warm start every query pays the vw-greedy cold-start exploration
// tax on each of its primitive instances; with warm start the cache
// amortizes that tax across the whole stream.
type Service struct {
	cfg        Config
	db         *tpch.DB
	dict       *core.Dictionary
	cache      *FlavorCache
	policySpec policy.Spec // cfg.Policy, parsed once at construction
	policyErr  error       // invalid Policy spec, reported by Execute

	seq         atomic.Int64 // per-session seed sequence
	seededInsts atomic.Int64 // instances that got >= 1 finite prior
	coldInsts   atomic.Int64 // multi-flavor instances built with no priors
}

// New builds a service over an already generated database.
func New(db *tpch.DB, cfg Config) *Service {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.VectorSize < 1 {
		cfg.VectorSize = 128
	}
	if cfg.Machine == nil {
		cfg.Machine = hw.Machine1()
	}
	if cfg.Policy == "" {
		cfg.Policy = "vw-greedy"
	}
	// Default each unset VW field individually: replacing the whole struct
	// whenever ExplorePeriod was unset silently discarded an
	// ExploitPeriod/ExploreLength the caller did set. Only an entirely zero
	// VW takes the full default (WarmupSkip/InitialSweep included — their
	// zero values are meaningful and must survive when anything was set).
	if cfg.VW == (core.VWParams{}) {
		cfg.VW = DefaultConfig().VW
	} else {
		cfg.VW = cfg.VW.FilledWith(DefaultConfig().VW)
	}
	if cfg.PipelineParallelism < 1 {
		cfg.PipelineParallelism = 1
	}
	if len(cfg.Flavors.Compilers) == 0 {
		// A zero-value Options registers no flavors and every query would
		// panic on its first primitive lookup; default like the other
		// fields so a hand-built Config works.
		cfg.Flavors = primitive.Everything()
	}
	if cfg.EncodedStorage {
		db.Encode()
	}
	svc := &Service{
		cfg:   cfg,
		db:    db,
		dict:  primitive.NewDictionary(cfg.Flavors),
		cache: NewFlavorCache(),
	}
	// Parse and probe-build the policy once: a bad spec is a configuration
	// error every Execute reports, not a per-session surprise, and valid
	// sessions reuse the parsed spec instead of re-parsing per query.
	svc.policySpec, svc.policyErr = policy.ParseSpec(cfg.Policy)
	if svc.policyErr == nil {
		_, svc.policyErr = policy.NewFactoryFromSpec(svc.policySpec, svc.policyEnv(cfg.Seed))
	}
	return svc
}

// policyEnv assembles the registry environment for one session seed.
func (svc *Service) policyEnv(seed int64) policy.Env {
	return policy.Env{Machine: svc.cfg.Machine, VW: svc.cfg.VW, Seed: seed}
}

// Cache exposes the shared knowledge store (reports, tests).
func (svc *Service) Cache() *FlavorCache { return svc.cache }

// Config returns the active configuration.
func (svc *Service) Config() Config { return svc.cfg }

// SeededInstances returns how many multi-flavor instances were constructed
// with at least one cached prior vs. completely cold.
func (svc *Service) SeededInstances() (seeded, cold int64) {
	return svc.seededInsts.Load(), svc.coldInsts.Load()
}

// Err reports the service's construction-time configuration error (an
// invalid policy spec), the same error Execute would return. Callers that
// build sessions directly (the distributed coordinator) check it up front.
func (svc *Service) Err() error { return svc.policyErr }

// NewSession builds a fresh warm-started session outside Execute. The
// distributed coordinator binds residual plans — everything above the
// preset fragment results — to sessions built here, then harvests them
// into the cache like any query session. Callers must check Err first and
// must not share the session across goroutines.
func (svc *Service) NewSession() *core.Session { return svc.newSession() }

// newSession builds a fresh session for one query. Sessions draw distinct
// deterministic seeds from the service's sequence, so concurrent runs are
// reproducible in aggregate even though job interleaving is not. The
// session's choosers come from the configured policy spec; with WarmStart
// on, each chooser that implements core.WarmStarter is seeded from the
// shared cache under the instance's stable identity before its first call.
// With PipelineParallelism > 1 the session carries a fragment spawner that
// builds each pipeline partition's session the same way — own seed, own
// choosers, same warm-start wiring — so intra-query partitions learn
// independently but share the cache's knowledge.
func (svc *Service) newSession() *core.Session {
	return svc.buildSession(svc.cfg.Seed+svc.seq.Add(1), -1)
}

// buildSession constructs one session: a query coordinator (part < 0) or
// the fragment session of pipeline partition part.
func (svc *Service) buildSession(seed int64, part int) *core.Session {
	opts := []core.SessionOption{
		core.WithVectorSize(svc.cfg.VectorSize),
		core.WithSeed(seed),
	}
	if part < 0 && svc.cfg.PipelineParallelism > 1 {
		opts = append(opts,
			core.WithParallelism(svc.cfg.PipelineParallelism),
			core.WithFragmentSpawner(func(fp int) *core.Session {
				return svc.buildSession(seed+core.FragmentSeedStride*int64(fp+1), fp)
			}))
	}
	// The probe in New caught spec errors; this rebuild cannot fail.
	factory, err := policy.NewFactoryFromSpec(svc.policySpec, svc.policyEnv(seed))
	if err != nil {
		panic("service: policy spec validated at New but failed at session build: " + err.Error())
	}
	if svc.cfg.WarmStart {
		opts = append(opts, core.WithInstanceChooser(func(sig, label string, arms []string) core.Chooser {
			n := len(arms)
			ch := factory(n)
			ws, ok := ch.(core.WarmStarter)
			if !ok {
				return ch // the policy cannot ingest knowledge: run it cold
			}
			// The arm names arrive from the session (flavor names for
			// primitives, strategy names for operator-level decisions), so
			// no dictionary lookup is needed — which is what lets decision
			// points warm-start through the same cache as flavors.
			// InstanceKey collapses fragment partition tags, so every
			// partition of a parallel plan seeds from — and harvests into —
			// the serial plan's cache entry.
			priors, any := svc.cache.Priors(primitive.InstanceKey(sig, label), arms)
			if n > 1 {
				if any {
					svc.seededInsts.Add(1)
				} else {
					svc.coldInsts.Add(1)
				}
			}
			if any {
				ws.SeedPriors(priors)
			}
			return ch
		}))
	} else {
		opts = append(opts, core.WithChooser(factory))
	}
	return core.NewSession(svc.dict, svc.cfg.Machine, opts...)
}

// JobStats summarizes one executed query for the load generator.
type JobStats struct {
	Query         int
	Latency       time.Duration
	PrimCycles    float64
	Instances     int   // primitive instances the plan created
	AdaptiveCalls int64 // calls into instances with > 1 flavor
	OffBestCalls  int64 // adaptive calls that used a non-best flavor
}

// Execute runs one TPC-H query (1-22) in a fresh session, harvests the
// learned flavor knowledge into the shared cache, and returns the result
// table plus per-job statistics. It is safe to call from many goroutines.
func (svc *Service) Execute(q int) (*engine.Table, JobStats, error) {
	if q < 1 || q > 22 {
		return nil, JobStats{}, fmt.Errorf("service: no TPC-H query %d", q)
	}
	if svc.policyErr != nil {
		return nil, JobStats{}, fmt.Errorf("service: %w", svc.policyErr)
	}
	s := svc.newSession()
	start := time.Now()
	tab, err := tpch.Query(q).Run(svc.db, s)
	st := JobStats{Query: q, Latency: time.Since(start)}
	if err != nil {
		return nil, st, fmt.Errorf("service: Q%02d: %w", q, err)
	}
	svc.cache.Harvest(s)
	st.PrimCycles = s.Ctx.PrimCycles // fragments fold in at the exchange
	st.Instances = len(s.AllInstances())
	st.AdaptiveCalls, st.OffBestCalls = adaptationCost(s)
	return tab, st, nil
}

// ExecutePlan runs an arbitrary logical plan — typically one a client
// shipped over the wire and the plan JSON codec rebuilt — in a fresh
// warm-started session, harvests the learned flavor knowledge exactly like
// Execute, and returns the materialized main root. All registered roots
// run (sharing materialized subtrees), so a multi-root plan's side outputs
// learn too, but only the main root's table is returned.
//
// Unlike the hand-audited TPC-H specs, a wire plan can reach engine states
// the builder's validation cannot rule out statically (type mismatches
// deep in an expression, a merge join over unsorted input); the engine
// reports those by panicking. A network server must not crash on a bad
// plan, so this is the one execution path that converts panics to errors.
func (svc *Service) ExecutePlan(b *plan.Builder) (tab *engine.Table, st JobStats, err error) {
	if svc.policyErr != nil {
		return nil, JobStats{}, fmt.Errorf("service: %w", svc.policyErr)
	}
	if len(b.Roots()) == 0 {
		return nil, JobStats{}, fmt.Errorf("service: plan %s has no roots", b.Name())
	}
	s := svc.newSession()
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			tab, st, err = nil, JobStats{Latency: time.Since(start)},
				fmt.Errorf("service: plan %s: %v", b.Name(), r)
		}
	}()
	exec := b.Bind(s)
	for _, root := range b.Roots() {
		t, rerr := exec.Run(root.Node)
		if rerr != nil {
			return nil, JobStats{Latency: time.Since(start)}, fmt.Errorf("service: plan %s: %w", b.Name(), rerr)
		}
		if tab == nil {
			tab = t
		}
	}
	st = JobStats{Latency: time.Since(start)}
	svc.cache.Harvest(s)
	st.PrimCycles = s.Ctx.PrimCycles
	st.Instances = len(s.AllInstances())
	st.AdaptiveCalls, st.OffBestCalls = adaptationCost(s)
	return tab, st, nil
}

// DB exposes the shared database (the server's plan codec resolves scan
// tables against it).
func (svc *Service) DB() *tpch.DB { return svc.db }

// Explain renders TPC-H query q's logical plan and the physical lowering
// the service's sessions will execute — including which pipelines fan out
// under the configured PipelineParallelism.
func (svc *Service) Explain(q int) (string, error) {
	if q < 1 || q > 22 {
		return "", fmt.Errorf("service: no TPC-H query %d", q)
	}
	return tpch.Explain(svc.db, q, svc.cfg.PipelineParallelism), nil
}

// adaptationCost measures how much of a session's work went into calls
// that did not use the flavor the session ultimately found best, pipeline-
// fragment instances included (see core.AdaptationCost). Operator-level
// decisions (join strategy, table sizing, partitioning) count on the same
// ledger: an exploratory merge-join probe is exploration tax exactly like
// an exploratory flavor call.
func adaptationCost(s *core.Session) (adaptive, offBest int64) {
	adaptive, offBest = core.AdaptationCost(s.AllInstances())
	da, db := core.DecisionAdaptationCost(s.AllDecisions())
	return adaptive + da, offBest + db
}
