package service

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/tpch"
)

// testDB is shared across tests; generation dominates test wall time.
var testDB = tpch.Generate(0.002, 42)

func testConfig(warm bool) Config {
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.WarmStart = warm
	cfg.Seed = 7
	return cfg
}

// fingerprint canonicalizes a result table for equivalence checks.
func fingerprint(t *engine.Table) string {
	return engine.TableString(t, 0) + fmt.Sprintf("rows=%d", t.Rows())
}

// baselineFingerprints runs each query single-threaded on a single-flavor
// build — the ground truth concurrent adaptive execution must reproduce.
func baselineFingerprints(t *testing.T, queries []int) map[int]string {
	t.Helper()
	out := make(map[int]string)
	for _, q := range queries {
		dict := primitive.NewDictionary(primitive.Defaults())
		s := core.NewSession(dict, hw.Machine1(), core.WithVectorSize(128), core.WithSeed(3))
		tab, err := tpch.Query(q).Run(testDB, s)
		if err != nil {
			t.Fatalf("baseline Q%02d: %v", q, err)
		}
		out[q] = fingerprint(tab)
	}
	return out
}

// TestConcurrentResultsMatchBaseline is the core correctness property under
// concurrency: many workers over one shared DB and flavor cache, with
// adaptive flavor choice, must produce exactly the single-threaded
// single-flavor results. Run with -race this also exercises the shared
// dictionary, DB and cache for data races.
func TestConcurrentResultsMatchBaseline(t *testing.T) {
	queries := []int{1, 3, 6, 12, 14}
	want := baselineFingerprints(t, queries)

	svc := New(testDB, testConfig(true))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Each query executes several times concurrently so warm-started and
	// cold sessions are both in flight.
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				tab, st, err := svc.Execute(q)
				if err != nil {
					errs <- err
					return
				}
				if got := fingerprint(tab); got != want[q] {
					errs <- fmt.Errorf("Q%02d: concurrent result differs from baseline", q)
				}
				if st.AdaptiveCalls == 0 {
					errs <- fmt.Errorf("Q%02d: no adaptive calls recorded", q)
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if svc.Cache().Len() == 0 {
		t.Error("cache empty after concurrent runs")
	}
}

// TestWarmStartConvergesFaster is the acceptance property of the warm
// start: a session seeded from the cache reaches its steady-state flavor
// choices with measurably fewer off-best calls than the cold session that
// populated the cache.
func TestWarmStartConvergesFaster(t *testing.T) {
	for _, q := range []int{1, 6, 12} {
		svc := New(testDB, testConfig(true))
		_, cold, err := svc.Execute(q) // empty cache: fully cold
		if err != nil {
			t.Fatalf("Q%02d cold: %v", q, err)
		}
		_, warm, err := svc.Execute(q) // seeded from the first run
		if err != nil {
			t.Fatalf("Q%02d warm: %v", q, err)
		}
		if cold.OffBestCalls == 0 {
			t.Fatalf("Q%02d: cold run paid no exploration tax; test is vacuous", q)
		}
		if warm.OffBestCalls >= cold.OffBestCalls {
			t.Errorf("Q%02d: warm off-best calls = %d, want < cold %d",
				q, warm.OffBestCalls, cold.OffBestCalls)
		}
		seeded, _ := svc.SeededInstances()
		if seeded == 0 {
			t.Errorf("Q%02d: no instances were seeded from the cache", q)
		}
	}
}

// TestWarmStartAcrossPolicies is the policy-agnostic warm-start
// acceptance property: for every learning policy in the registry the same
// cache, capabilities and harness must (a) produce baseline-identical
// results under concurrent execution (meaningful under -race: the cache,
// dictionary and DB are shared), (b) seed instances from the cache, and
// (c) not increase the exploration tax relative to the cold run that
// populated the cache.
func TestWarmStartAcrossPolicies(t *testing.T) {
	want := baselineFingerprints(t, []int{6})
	// The ctx- rows run the contextual choose path (per-bucket bandits,
	// lazy bucket creation, cached priors) under concurrency — the test is
	// meaningful under -race for them too.
	for _, pol := range []string{"vw-greedy", "eps-greedy", "ucb1", "thompson", "ctx-greedy", "ctx-vw-greedy"} {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			cfg := testConfig(true)
			cfg.Policy = pol
			svc := New(testDB, cfg)
			_, cold, err := svc.Execute(6) // empty cache: fully cold
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			// Concurrent warm executions, all seeded from the first run.
			var wg sync.WaitGroup
			stats := make([]JobStats, 6)
			errs := make([]error, 6)
			for i := range stats {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var tab *engine.Table
					tab, stats[i], errs[i] = svc.Execute(6)
					if errs[i] == nil && fingerprint(tab) != want[6] {
						errs[i] = fmt.Errorf("%s: warm concurrent result differs from baseline", pol)
					}
				}(i)
			}
			wg.Wait()
			var warmOffBest, warmRuns int64
			for i, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
				warmOffBest += stats[i].OffBestCalls
				warmRuns++
			}
			seeded, _ := svc.SeededInstances()
			if seeded == 0 {
				t.Errorf("%s: no instances were seeded from the cache", pol)
			}
			if avg := warmOffBest / warmRuns; avg > cold.OffBestCalls {
				t.Errorf("%s: warm off-best calls/run = %d, want <= cold %d", pol, avg, cold.OffBestCalls)
			}
			if svc.Cache().Len() == 0 {
				t.Errorf("%s: harvest left the cache empty", pol)
			}
		})
	}
}

// TestNonSnapshottingPolicyRunsCold: a policy without the capabilities
// (fixed) must execute correctly, never consult the cache for seeding, and
// contribute nothing to it.
func TestNonSnapshottingPolicyRuns(t *testing.T) {
	cfg := testConfig(true)
	cfg.Policy = "fixed:arm=0"
	svc := New(testDB, cfg)
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	if svc.Cache().Len() != 0 {
		t.Error("a non-Snapshotter policy must not populate the cache")
	}
	seeded, _ := svc.SeededInstances()
	if seeded != 0 {
		t.Error("a non-WarmStarter policy must not be seeded")
	}
}

// TestInvalidPolicySpecSurfaces: a bad spec is a configuration error every
// Execute reports, not a panic.
func TestInvalidPolicySpec(t *testing.T) {
	cfg := testConfig(true)
	cfg.Policy = "no-such-policy"
	svc := New(testDB, cfg)
	if _, _, err := svc.Execute(6); err == nil {
		t.Error("invalid policy spec should error on Execute")
	}
	cfg.Policy = "ucb1:bogus=1"
	if _, _, err := New(testDB, cfg).Execute(6); err == nil {
		t.Error("invalid policy parameter should error on Execute")
	}
}

// TestWarmStartDisabled: with WarmStart off the cache still accumulates
// knowledge (harvest is unconditional) but no instance gets seeded.
func TestWarmStartDisabled(t *testing.T) {
	svc := New(testDB, testConfig(false))
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	seeded, cold := svc.SeededInstances()
	if seeded != 0 || cold != 0 {
		t.Errorf("cold service should not consult the cache: seeded=%d cold=%d", seeded, cold)
	}
	if svc.Cache().Len() == 0 {
		t.Error("harvest should fill the cache even when warm start is off")
	}
}

func TestRunLoadMetrics(t *testing.T) {
	svc := New(testDB, testConfig(true))
	m, err := svc.RunLoad(LoadConfig{Mix: []int{6, 12}, Jobs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 12 || m.Errors != 0 {
		t.Errorf("jobs=%d errors=%d, want 12/0", m.Jobs, m.Errors)
	}
	if m.JobsPerSec <= 0 {
		t.Error("throughput should be positive")
	}
	if m.P50 > m.P95 || m.P95 > m.MaxLatency {
		t.Errorf("latency percentiles out of order: p50=%v p95=%v max=%v", m.P50, m.P95, m.MaxLatency)
	}
	if m.AdaptiveCalls <= 0 {
		t.Error("no adaptive calls measured")
	}
	if s := m.String(); len(s) < 40 {
		t.Errorf("summary too short: %q", s)
	}
}

func TestRunLoadDurationBound(t *testing.T) {
	svc := New(testDB, testConfig(true))
	m, err := svc.RunLoad(LoadConfig{Mix: []int{6}, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs == 0 {
		t.Error("time-bounded load ran no jobs")
	}
}

// TestRunLoadDeadlineInterruptsBlockedSend: with every worker busy at
// expiry, the producer is blocked on the jobs channel; the deadline must
// break that send so the run ends promptly instead of queueing one more
// job per worker after the deadline.
func TestRunLoadDeadlineInterruptsBlockedSend(t *testing.T) {
	cfg := testConfig(false)
	cfg.Workers = 1 // one in-flight job blocks the producer immediately
	svc := New(testDB, cfg)
	start := time.Now()
	m, err := svc.RunLoad(LoadConfig{Mix: []int{1}, Duration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// The single worker finishes its in-flight query (plus at most the one
	// job buffered in the send); a runaway producer would keep going.
	if m.Jobs > 2 {
		t.Errorf("deadline let %d jobs start, want <= 2", m.Jobs)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("time-bounded run took %v", elapsed)
	}
}

// TestRunLoadExcludesErroredJobs: failed jobs count as errors but
// contribute no latency samples — a stream of failures must not fabricate
// percentiles.
func TestRunLoadExcludesErroredJobs(t *testing.T) {
	cfg := testConfig(false)
	cfg.Policy = "no-such-policy" // every Execute fails fast
	svc := New(testDB, cfg)
	m, err := svc.RunLoad(LoadConfig{Mix: []int{6}, Jobs: 8})
	if err == nil {
		t.Fatal("expected the first job error to surface")
	}
	if m.Errors != m.Jobs || m.Jobs != 8 {
		t.Errorf("jobs=%d errors=%d, want 8/8", m.Jobs, m.Errors)
	}
	if m.P50 != 0 || m.P95 != 0 || m.P99 != 0 || m.MaxLatency != 0 {
		t.Errorf("errored jobs leaked into latency percentiles: p50=%v p95=%v p99=%v max=%v",
			m.P50, m.P95, m.P99, m.MaxLatency)
	}
	if m.JobsPerSec != 0 {
		t.Errorf("throughput counted errored jobs: %v", m.JobsPerSec)
	}
}

func TestRunLoadValidation(t *testing.T) {
	svc := New(testDB, testConfig(true))
	if _, err := svc.RunLoad(LoadConfig{Jobs: 1}); err == nil {
		t.Error("empty mix should error")
	}
	if _, err := svc.RunLoad(LoadConfig{Mix: []int{99}, Jobs: 1}); err == nil {
		t.Error("bad query number should error")
	}
	if _, err := svc.RunLoad(LoadConfig{Mix: []int{1}}); err == nil {
		t.Error("missing Jobs and Duration should error")
	}
	if _, _, err := svc.Execute(0); err == nil {
		t.Error("Execute(0) should error")
	}
}

// TestZeroValueConfigWorks: a hand-built Config (not derived from
// DefaultConfig) must not panic on the first query.
func TestZeroValueConfigWorks(t *testing.T) {
	svc := New(testDB, Config{Workers: 1})
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	// An entirely zero VW takes the full default, warmup/sweep included.
	if vw := svc.Config().VW; vw != DefaultConfig().VW {
		t.Errorf("zero VW = %+v, want full default %+v", vw, DefaultConfig().VW)
	}
}

// TestConfigKeepsCallerVWParams is the regression test for the VW-defaults
// bug: New used to replace the entire VW struct whenever ExplorePeriod was
// unset, silently discarding an ExploitPeriod/ExploreLength/WarmupSkip the
// caller did set. Each unset field must default individually.
func TestConfigKeepsCallerVWParams(t *testing.T) {
	cfg := Config{Workers: 1, VW: core.VWParams{ExploitPeriod: 5, ExploreLength: 3}}
	svc := New(testDB, cfg)
	vw := svc.Config().VW
	if vw.ExploitPeriod != 5 {
		t.Errorf("caller-set ExploitPeriod clobbered: got %d, want 5", vw.ExploitPeriod)
	}
	if vw.ExploreLength != 3 {
		t.Errorf("caller-set ExploreLength clobbered: got %d, want 3", vw.ExploreLength)
	}
	if vw.ExplorePeriod != DefaultConfig().VW.ExplorePeriod {
		t.Errorf("unset ExplorePeriod = %d, want default %d", vw.ExplorePeriod, DefaultConfig().VW.ExplorePeriod)
	}
	// The defaulted parameters must actually run.
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	// Caller-set fields survive in the other direction too: ExplorePeriod
	// set, the rest unset.
	svc = New(testDB, Config{Workers: 1, VW: core.VWParams{ExplorePeriod: 256}})
	vw = svc.Config().VW
	if vw.ExplorePeriod != 256 {
		t.Errorf("caller-set ExplorePeriod clobbered: got %d, want 256", vw.ExplorePeriod)
	}
	if vw.ExploitPeriod != DefaultConfig().VW.ExploitPeriod {
		t.Errorf("unset ExploitPeriod = %d, want default %d", vw.ExploitPeriod, DefaultConfig().VW.ExploitPeriod)
	}
}

// TestParallelExecutionMatchesSerial: the service acceptance property of
// pipeline parallelism — with PipelineParallelism P > 1 every query result
// is identical to the serial plan's, and the partition sessions harvest
// into the shared cache under exactly the serial plan's instance keys.
func TestParallelExecutionMatchesSerial(t *testing.T) {
	queries := []int{1, 3, 6, 12, 14}
	want := baselineFingerprints(t, queries)

	// The pipeline fan-out decision only exists when a pipeline actually
	// fans out, so its keys are legitimately parallel-only; every other
	// key — primitive instances and operator decisions alike — must match
	// the serial plan's exactly.
	stripFanout := func(keys []string) []string {
		out := keys[:0]
		for _, k := range keys {
			if !strings.HasPrefix(k, core.DecisionSig("parallelism")+"@") {
				out = append(out, k)
			}
		}
		return out
	}

	serialKeys := func() []string {
		cfg := testConfig(true)
		svc := New(testDB, cfg)
		for _, q := range queries {
			if _, _, err := svc.Execute(q); err != nil {
				t.Fatalf("serial Q%02d: %v", q, err)
			}
		}
		return svc.Cache().Keys()
	}()

	for _, p := range []int{2, 4} {
		cfg := testConfig(true)
		cfg.PipelineParallelism = p
		svc := New(testDB, cfg)
		for _, q := range queries {
			tab, st, err := svc.Execute(q)
			if err != nil {
				t.Fatalf("P=%d Q%02d: %v", p, q, err)
			}
			if got := fingerprint(tab); got != want[q] {
				t.Errorf("P=%d Q%02d: result differs from serial baseline", p, q)
			}
			if st.AdaptiveCalls == 0 {
				t.Errorf("P=%d Q%02d: no adaptive calls recorded", p, q)
			}
		}
		gotKeys := stripFanout(svc.Cache().Keys())
		if len(gotKeys) != len(serialKeys) {
			t.Fatalf("P=%d: %d cache keys, serial has %d — partition tags leaked into keys?\n%v\nvs\n%v",
				p, len(gotKeys), len(serialKeys), gotKeys, serialKeys)
		}
		for i := range gotKeys {
			if gotKeys[i] != serialKeys[i] {
				t.Errorf("P=%d: cache key %q differs from serial %q", p, gotKeys[i], serialKeys[i])
			}
		}
	}
}

// TestParallelWarmStartSeedsFragments: fragment sessions participate in the
// warm start — after a priming query, the partitions of a parallel plan
// seed from the cache and the exploration tax drops, exactly like serial
// sessions. Run with -race this also exercises concurrent fragment
// goroutines over the shared cache, dictionary and DB.
func TestParallelWarmStartSeedsFragments(t *testing.T) {
	cfg := testConfig(true)
	cfg.PipelineParallelism = 4
	svc := New(testDB, cfg)
	_, cold, err := svc.Execute(6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	warm := make([]JobStats, 4)
	errs := make([]error, 4)
	for i := range warm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, warm[i], errs[i] = svc.Execute(6)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	seeded, _ := svc.SeededInstances()
	if seeded == 0 {
		t.Error("no fragment instances were seeded from the cache")
	}
	var warmOffBest int64
	for _, st := range warm {
		warmOffBest += st.OffBestCalls
	}
	if cold.OffBestCalls == 0 {
		t.Fatal("cold parallel run paid no exploration tax; test is vacuous")
	}
	if avg := warmOffBest / int64(len(warm)); avg > cold.OffBestCalls {
		t.Errorf("warm parallel off-best calls/run = %d, want <= cold %d", avg, cold.OffBestCalls)
	}
}

// TestHarvestDoesNotEchoPriors: a warm-started session must publish only
// costs it measured itself. If the snapshot leaked seeded priors back
// through Harvest, the cache would EWMA-merge its own stale values on
// every warm query and the sample counts would grow without new evidence.
func TestHarvestDoesNotEchoPriors(t *testing.T) {
	svc := New(testDB, testConfig(true))
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	cache := svc.Cache()
	// Pick a cached multi-flavor instance and poison one of its flavors
	// with an absurd cost the virtual hardware can never produce.
	keys := cache.Keys()
	if len(keys) == 0 {
		t.Fatal("no cached knowledge after a query")
	}
	const poison = 123456789.0
	key := keys[0]
	cache.mu.Lock()
	var poisoned string
	for name, k := range cache.entries[key] {
		k.cost = poison
		poisoned = name
		break
	}
	cache.mu.Unlock()
	// A warm session seeds the poisoned prior; because that arm now looks
	// maximally expensive the sweep skips it and the session never
	// measures it — so harvest must leave the cache entry untouched
	// rather than echo 123456789 back as a fresh observation.
	if _, _, err := svc.Execute(6); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	got := cache.entries[key][poisoned]
	cache.mu.Unlock()
	if got.cost != poison || got.samples != 1 {
		t.Errorf("unmeasured prior was re-harvested: cost=%v samples=%d, want %v/1",
			got.cost, got.samples, poison)
	}
}

func TestFlavorCacheBasics(t *testing.T) {
	c := NewFlavorCache()
	if _, any := c.Priors("k", []string{"a", "b"}); any {
		t.Error("empty cache should have no priors")
	}
	c.Observe("k", "a", 4)
	c.Observe("k", "b", 2)
	priors, any := c.Priors("k", []string{"a", "b", "missing"})
	if !any {
		t.Fatal("expected priors")
	}
	if priors[0] != 4 || priors[1] != 2 || !math.IsInf(priors[2], 1) {
		t.Errorf("priors = %v", priors)
	}
	if name, cost := c.BestFlavor("k"); name != "b" || cost != 2 {
		t.Errorf("best = %s/%.1f, want b/2", name, cost)
	}
	// EWMA is recent-biased: a new observation moves the estimate halfway.
	c.Observe("k", "a", 8)
	priors, _ = c.Priors("k", []string{"a"})
	if priors[0] != 6 {
		t.Errorf("EWMA cost = %v, want 6", priors[0])
	}
	// Junk costs are ignored.
	c.Observe("k", "a", math.Inf(1))
	c.Observe("k", "a", math.NaN())
	c.Observe("k", "a", -1)
	priors, _ = c.Priors("k", []string{"a"})
	if priors[0] != 6 {
		t.Errorf("junk observation changed cost to %v", priors[0])
	}
	if c.Len() != 1 || len(c.Keys()) != 1 {
		t.Errorf("cache shape: len=%d keys=%v", c.Len(), c.Keys())
	}
}

// TestCacheConcurrentAccess hammers the cache from many goroutines; it is
// meaningful mainly under -race.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewFlavorCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%4)
			for i := 0; i < 500; i++ {
				c.Observe(key, "a", float64(i%7+1))
				c.Priors(key, []string{"a", "b"})
				c.BestFlavor(key)
				c.Len()
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheNeverStoresNonFiniteCosts is the regression test for the
// finite-cost invariant: under concurrent observes mixing junk (Inf, NaN,
// negative) with float64-horizon values like MaxFloat64, nothing the cache
// hands back — priors or best flavor — may ever be non-finite, and EWMA
// merging at the horizon must not overflow into +Inf. Run with -race this
// also guards the merge path itself.
func TestCacheNeverStoresNonFiniteCosts(t *testing.T) {
	c := NewFlavorCache()
	junk := []float64{math.Inf(1), math.Inf(-1), math.NaN(), -1, math.MaxFloat64, math.MaxFloat64 / 2, 3.5}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%2)
			for i := 0; i < 400; i++ {
				c.Observe(key, "a", junk[(g+i)%len(junk)])
				c.Observe(key, "b", junk[(g*3+i)%len(junk)])
			}
		}(g)
	}
	wg.Wait()
	for _, key := range c.Keys() {
		priors, any := c.Priors(key, []string{"a", "b"})
		if !any {
			t.Fatalf("%s: finite observations were dropped entirely", key)
		}
		for i, p := range priors {
			if math.IsNaN(p) || p < 0 {
				t.Errorf("%s prior[%d] = %v", key, i, p)
			}
			// +Inf is the legal "unknown" marker, but here both flavors saw
			// finite costs, so the stored estimates must be finite.
			if math.IsInf(p, 1) {
				t.Errorf("%s prior[%d] is +Inf after finite observes", key, i)
			}
		}
		if name, cost := c.BestFlavor(key); name == "" || !finiteCost(cost) {
			t.Errorf("%s best = %q/%v, want a finite best", key, name, cost)
		}
	}
}

// TestServiceExplain: the service exposes the planner's explain under its
// own configured pipeline parallelism.
func TestServiceExplain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PipelineParallelism = 4
	svc := New(testDB, cfg)
	out, err := svc.Explain(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "morsel fragments") {
		t.Errorf("explain at P=4 shows no fan-out:\n%s", out)
	}
	if !strings.Contains(out, "Q1/sel0") {
		t.Errorf("explain misses derived labels:\n%s", out)
	}
	if _, err := svc.Explain(23); err == nil {
		t.Error("query 23 should error")
	}
}
