package service

import (
	"strings"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/storage"
	"microadapt/internal/tpch"
)

// forceEncodings re-encodes a table pinning the named columns to specific
// encodings (the analyzer picks the rest).
func forceEncodings(t *testing.T, tab *engine.Table, pins map[string]storage.Encoding) {
	t.Helper()
	cols := make([]storage.EncodedColumn, len(tab.Sch))
	for i, c := range tab.Sch {
		if e, ok := pins[c.Name]; ok {
			enc, err := storage.EncodeColumnAs(tab.Cols[i], e)
			if err != nil {
				t.Fatalf("pinning %s to %s: %v", c.Name, e, err)
			}
			cols[i] = enc
			continue
		}
		cols[i] = storage.EncodeColumn(tab.Cols[i])
	}
	tab.Enc = storage.NewEncodedTable(tab.Name, tab.Sch, cols)
}

// decompressKeys runs Q6 over the db and returns the InstanceKeys of every
// decompression-family instance, harvesting the session into cache.
func decompressKeys(t *testing.T, db *tpch.DB, cache *FlavorCache) map[string]bool {
	t.Helper()
	s := core.NewSession(primitive.NewDictionary(primitive.Everything()), hw.Machine1(),
		core.WithVectorSize(128), core.WithSeed(7))
	if _, err := tpch.Query(6).Run(db, s); err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, inst := range s.AllInstances() {
		sig := inst.Prim.Sig
		if strings.HasPrefix(sig, "scan_decompress_") || strings.HasPrefix(sig, "selenc_") {
			keys[primitive.InstanceKeyOf(inst)] = true
		}
	}
	cache.Harvest(s)
	return keys
}

// TestInstanceKeysStableAcrossEncodings is the warm-start-fragmentation
// regression: when the analyzer (or an operator) re-encodes a column, the
// same logical scan must keep producing the same primitive.InstanceKeys —
// decompression signatures are keyed by element type and plan position,
// never by encoding — so the FlavorCache neither fragments nor grows when
// the encoding flips underneath it.
func TestInstanceKeysStableAcrossEncodings(t *testing.T) {
	cache := NewFlavorCache()

	dbA := tpch.Generate(0.002, 7)
	forceEncodings(t, dbA.Lineitem, map[string]storage.Encoding{
		"l_shipdate": storage.RLE,
		"l_quantity": storage.Dict,
	})
	keysA := decompressKeys(t, dbA, cache)
	if len(keysA) == 0 {
		t.Fatal("no decompression instances on encoded storage")
	}
	lenAfterA := cache.Len()

	dbB := tpch.Generate(0.002, 7)
	forceEncodings(t, dbB.Lineitem, map[string]storage.Encoding{
		"l_shipdate": storage.BitPack,
		"l_quantity": storage.BitPack,
	})
	keysB := decompressKeys(t, dbB, cache)

	if len(keysA) != len(keysB) {
		t.Fatalf("key sets differ in size: %d vs %d\nA: %v\nB: %v", len(keysA), len(keysB), keysA, keysB)
	}
	for k := range keysA {
		if !keysB[k] {
			t.Errorf("key %q present under RLE/Dict but not under BitPack", k)
		}
	}
	if got := cache.Len(); got != lenAfterA {
		t.Errorf("cache fragmented across encodings: %d keys after A, %d after B", lenAfterA, got)
	}
	for k := range keysA {
		if !strings.Contains(k, "@") {
			continue
		}
		for _, e := range []string{"rle", "dict", "bitpack", "flat"} {
			if strings.Contains(k, e) {
				t.Errorf("InstanceKey %q leaks the encoding name %q", k, e)
			}
		}
	}
}

// TestWarmStartCrossesEncodings: knowledge harvested under one encoding
// must seed priors for the same scan under another encoding — the whole
// point of encoding-free keys.
func TestWarmStartCrossesEncodings(t *testing.T) {
	cache := NewFlavorCache()
	dbA := tpch.Generate(0.002, 7)
	forceEncodings(t, dbA.Lineitem, map[string]storage.Encoding{"l_shipdate": storage.RLE})
	keys := decompressKeys(t, dbA, cache)

	dict := primitive.NewDictionary(primitive.Everything())
	seeded := 0
	for k := range keys {
		sig := k[:strings.Index(k, "@")]
		prim, ok := dict.Lookup(sig)
		if !ok {
			t.Fatalf("key %q references unknown signature", k)
		}
		if priors, any := cache.Priors(k, primitive.FlavorNames(prim)); any {
			seeded++
			if len(priors) != len(prim.Flavors) {
				t.Errorf("priors for %q have %d arms, want %d", k, len(priors), len(prim.Flavors))
			}
		}
	}
	if seeded == 0 {
		t.Error("no decompression instance key produced warm-start priors")
	}
}

// TestServiceEncodedStorage: the service flag encodes the database and the
// load still runs with warm start across sessions.
func TestServiceEncodedStorage(t *testing.T) {
	db := tpch.Generate(0.002, 7)
	svc := New(db, Config{
		Workers: 2, VectorSize: 128, Seed: 3,
		EncodedStorage: true, WarmStart: true,
	})
	if !db.Encoded() {
		t.Fatal("EncodedStorage did not encode the database")
	}
	want := ""
	for i := 0; i < 3; i++ {
		tab, _, err := svc.Execute(6)
		if err != nil {
			t.Fatal(err)
		}
		fp := engine.TableString(tab, 0)
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("run %d diverged on encoded storage", i)
		}
	}
	if svc.Cache().Len() == 0 {
		t.Error("no knowledge harvested from encoded runs")
	}
}
