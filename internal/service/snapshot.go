// FlavorCache wire form: the JSON snapshot flavor knowledge travels in
// between processes. Federation is symmetric — a shard exports its cache
// for the coordinator to pull, and imports merged fleet knowledge the
// coordinator pushes back — and lossy-merge-friendly: Import routes every
// remote estimate through Observe, so remote knowledge EWMA-merges with
// local observations instead of overwriting them, and the cache's
// finite-cost invariants hold for wire input exactly as for local
// harvests.
package service

// FlavorStat is the wire form of one flavor's cached estimate.
type FlavorStat struct {
	Cost    float64 `json:"cost"`    // EWMA cycles/tuple
	Samples int64   `json:"samples"` // sessions that contributed
}

// KnowledgeSnapshot is the wire form of a FlavorCache: instance key →
// flavor name → estimate. Instance keys are partition-free plan positions
// ("Q1/sel0/...") and flavors travel by name, so snapshots transfer
// between processes with different shard data, parallelism, or even
// registered flavor sets — unknown flavors simply never match an arm.
type KnowledgeSnapshot struct {
	Entries map[string]map[string]FlavorStat `json:"entries"`
}

// Len returns the number of instance keys in the snapshot.
func (s KnowledgeSnapshot) Len() int { return len(s.Entries) }

// Export snapshots the cache's current knowledge.
func (c *FlavorCache) Export() KnowledgeSnapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := KnowledgeSnapshot{Entries: make(map[string]map[string]FlavorStat, len(c.entries))}
	for key, flavors := range c.entries {
		e := make(map[string]FlavorStat, len(flavors))
		for name, k := range flavors {
			if !finiteCost(k.cost) {
				continue
			}
			e[name] = FlavorStat{Cost: k.cost, Samples: k.samples}
		}
		if len(e) > 0 {
			snap.Entries[key] = e
		}
	}
	return snap
}

// Import merges a snapshot into the cache through Observe (EWMA, finite
// costs only) and returns how many flavor estimates were accepted.
func (c *FlavorCache) Import(snap KnowledgeSnapshot) int {
	n := 0
	for key, flavors := range snap.Entries {
		for name, st := range flavors {
			if !finiteCost(st.Cost) {
				continue
			}
			c.Observe(key, name, st.Cost)
			n++
		}
	}
	return n
}
