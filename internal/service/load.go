package service

import (
	"fmt"
	"sync"
	"time"

	"microadapt/internal/stats"
)

// LoadConfig describes one load-generation run against a Service.
type LoadConfig struct {
	// Mix is the query mix: jobs cycle through these TPC-H query numbers
	// round-robin, so every run sees the same deterministic job sequence
	// regardless of worker count.
	Mix []int
	// Jobs is the total number of queries to execute. When 0, the run is
	// time-bounded by Duration instead.
	Jobs int
	// Duration caps a time-bounded run (used when Jobs == 0): no new job
	// starts after the deadline; in-flight jobs drain.
	Duration time.Duration
}

// Metrics aggregates a load run: throughput, the latency distribution, and
// the adaptation-overhead counters that make warm-start effects visible.
type Metrics struct {
	Jobs    int
	Errors  int
	Workers int
	Wall    time.Duration

	JobsPerSec    float64
	P50, P95, P99 time.Duration
	MaxLatency    time.Duration

	// AdaptiveCalls counts primitive calls into multi-flavor instances
	// across all jobs; OffBestCalls is the subset spent on a flavor other
	// than the one the session ultimately found best — the exploration tax.
	AdaptiveCalls int64
	OffBestCalls  int64
	// SeededInstances / ColdInstances count multi-flavor instances built
	// with vs. without cache priors during this run.
	SeededInstances int64
	ColdInstances   int64
}

// OffBestPerJob is the mean exploration tax of one query.
func (m Metrics) OffBestPerJob() float64 {
	if m.Jobs == 0 {
		return 0
	}
	return float64(m.OffBestCalls) / float64(m.Jobs)
}

// OffBestFraction is the share of adaptive calls spent off the best flavor.
func (m Metrics) OffBestFraction() float64 {
	if m.AdaptiveCalls == 0 {
		return 0
	}
	return float64(m.OffBestCalls) / float64(m.AdaptiveCalls)
}

// String renders a one-run summary.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"%d jobs, %d workers, %v wall (%.1f jobs/s); latency p50=%v p95=%v p99=%v max=%v; off-best %.1f calls/job (%.1f%% of adaptive)",
		m.Jobs, m.Workers, m.Wall.Round(time.Millisecond), m.JobsPerSec,
		m.P50.Round(time.Microsecond), m.P95.Round(time.Microsecond),
		m.P99.Round(time.Microsecond), m.MaxLatency.Round(time.Microsecond),
		m.OffBestPerJob(), 100*m.OffBestFraction())
}

// RunLoad executes the configured load over the service's worker pool and
// returns aggregate metrics. Result tables are discarded — correctness is
// the domain of Execute and the tests; RunLoad measures performance.
func (svc *Service) RunLoad(lc LoadConfig) (Metrics, error) {
	if len(lc.Mix) == 0 {
		return Metrics{}, fmt.Errorf("service: empty query mix")
	}
	for _, q := range lc.Mix {
		if q < 1 || q > 22 {
			return Metrics{}, fmt.Errorf("service: bad query %d in mix", q)
		}
	}
	if lc.Jobs <= 0 && lc.Duration <= 0 {
		return Metrics{}, fmt.Errorf("service: load needs Jobs or Duration")
	}

	seededBefore, coldBefore := svc.SeededInstances()

	jobs := make(chan int)
	var (
		mu        sync.Mutex
		latencies []float64
		m         Metrics
		firstErr  error
	)
	m.Workers = svc.cfg.Workers

	var wg sync.WaitGroup
	for w := 0; w < svc.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range jobs {
				_, st, err := svc.Execute(q)
				mu.Lock()
				m.Jobs++
				if err != nil {
					m.Errors++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					latencies = append(latencies, float64(st.Latency))
					if st.Latency > m.MaxLatency {
						m.MaxLatency = st.Latency
					}
					m.AdaptiveCalls += st.AdaptiveCalls
					m.OffBestCalls += st.OffBestCalls
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	var expired <-chan time.Time
	if lc.Jobs <= 0 {
		timer := time.NewTimer(lc.Duration)
		defer timer.Stop()
		expired = timer.C
	}
produce:
	for i := 0; lc.Jobs <= 0 || i < lc.Jobs; i++ {
		if expired == nil {
			jobs <- lc.Mix[i%len(lc.Mix)]
			continue
		}
		// Time-bounded: the deadline must also interrupt a blocked send,
		// or a job could start long after it (all workers busy at expiry).
		select {
		case jobs <- lc.Mix[i%len(lc.Mix)]:
		case <-expired:
			break produce
		}
	}
	close(jobs)
	wg.Wait()
	m.Wall = time.Since(start)

	if m.Wall > 0 {
		m.JobsPerSec = float64(m.Jobs-m.Errors) / m.Wall.Seconds()
	}
	m.P50 = time.Duration(stats.Percentile(latencies, 50))
	m.P95 = time.Duration(stats.Percentile(latencies, 95))
	m.P99 = time.Duration(stats.Percentile(latencies, 99))
	seededAfter, coldAfter := svc.SeededInstances()
	m.SeededInstances = seededAfter - seededBefore
	m.ColdInstances = coldAfter - coldBefore
	return m, firstErr
}
