// Plan JSON codec: a wire form of the logical plan DAG, the format the
// madaptd query server accepts. A plan marshals to a flat node list in
// creation order (node references are indices into that list), so
// unmarshalling replays the exact Builder calls that produced it — labels,
// schemas and partitionability re-derive identically, which is what makes
// the explain output and the FlavorCache instance keys of a round-tripped
// plan indistinguishable from the original's.
//
// Unmarshalling is server-side validation: tables resolve through a caller
// supplied resolver, node references must point backwards (no cycles),
// operator and expression kinds must be known, and every schema lookup
// failure surfaces as an error, never a panic.
package plan

import (
	"encoding/json"
	"fmt"
	"sync"

	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// MaxPlanNodes bounds the node count UnmarshalPlan accepts; a plan larger
// than this is rejected before any rebuilding work happens (admission
// control for plan complexity, not just queue depth).
const MaxPlanNodes = 4096

// mapI64Funcs is the registry of named scalar functions MapI64 expression
// nodes may carry across serialization (e.g. "tpch.year_of").
var (
	mapI64Mu    sync.RWMutex
	mapI64Funcs = make(map[string]func(int64) int64)
)

// RegisterMapI64 registers fn under name for the plan JSON codec.
// Registering the same name twice is allowed (last wins) so package init
// order never matters.
func RegisterMapI64(name string, fn func(int64) int64) {
	mapI64Mu.Lock()
	defer mapI64Mu.Unlock()
	mapI64Funcs[name] = fn
}

func lookupMapI64(name string) (func(int64) int64, bool) {
	mapI64Mu.RLock()
	defer mapI64Mu.RUnlock()
	fn, ok := mapI64Funcs[name]
	return fn, ok
}

// TableResolver maps a stored-table name to the table a deserialized scan
// node reads. The server resolves against its TPC-H database.
type TableResolver func(name string) (*engine.Table, bool)

// jsonPlan is the wire form of a Builder.
type jsonPlan struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Roots []jsonRoot `json:"roots"`
}

type jsonRoot struct {
	Name string `json:"name"`
	Node int    `json:"node"`
}

// jsonNode is the wire form of one logical node. Only the fields of its
// kind are populated.
type jsonNode struct {
	Kind string `json:"kind"`
	In   []int  `json:"in,omitempty"`

	// Label pins the node's plan-position label instead of re-deriving it
	// from the receiving builder's node ordinals. Plan fragments shipped to
	// shards carry their original labels this way, so shard-side primitive
	// instances key into the FlavorCache under the same plan positions as
	// the coordinator and any single-process deployment. Empty means
	// "derive as usual" (every pre-fragment wire plan).
	Label string `json:"label,omitempty"`

	// scan
	Table string   `json:"table,omitempty"`
	Cols  []string `json:"cols,omitempty"`

	// select
	Preds []jsonPred `json:"preds,omitempty"`

	// project
	Exprs []jsonProjExpr `json:"exprs,omitempty"`

	// aggregate
	GroupBy []int     `json:"group_by,omitempty"`
	Aggs    []jsonAgg `json:"aggs,omitempty"`

	// hash join
	JoinKind  string   `json:"join_kind,omitempty"`
	BuildKey  string   `json:"build_key,omitempty"`
	ProbeKey  string   `json:"probe_key,omitempty"`
	Payload   []string `json:"payload,omitempty"`
	BloomBits int      `json:"bloom_bits,omitempty"`

	// merge join
	LeftKey  string   `json:"left_key,omitempty"`
	RightKey string   `json:"right_key,omitempty"`
	LeftOut  []string `json:"left_out,omitempty"`
	RightOut []string `json:"right_out,omitempty"`

	// sort / top-n / limit
	Keys  []jsonSortKey `json:"keys,omitempty"`
	Limit int           `json:"limit,omitempty"`
}

// jsonPred mirrors engine.Pred plus the optional scalar deferral. RHSCol
// is a pointer because 0 is a valid column index and -1 ("no column") is
// the Go-side default.
type jsonPred struct {
	Col    int         `json:"col"`
	Op     string      `json:"op"`
	RHSCol *int        `json:"rhs_col,omitempty"`
	I64    int64       `json:"i64,omitempty"`
	F64    float64     `json:"f64,omitempty"`
	Str    string      `json:"str,omitempty"`
	Set    []string    `json:"set,omitempty"`
	SetI32 []int32     `json:"set_i32,omitempty"`
	Scalar *jsonScalar `json:"scalar,omitempty"`
}

type jsonScalar struct {
	From int    `json:"from"`
	Col  string `json:"col"`
	Div  int64  `json:"div,omitempty"`
}

type jsonProjExpr struct {
	Name string    `json:"name"`
	Expr *jsonExpr `json:"expr"`
}

// jsonExpr is the tagged-union wire form of an expression tree.
type jsonExpr struct {
	Kind string `json:"kind"`

	Idx     int       `json:"idx,omitempty"`     // col
	I64     int64     `json:"i64,omitempty"`     // const i64
	I32     int32     `json:"i32,omitempty"`     // const i32
	F64     float64   `json:"f64,omitempty"`     // const f64
	Op      string    `json:"op,omitempty"`      // bin
	L       *jsonExpr `json:"l,omitempty"`       // bin
	R       *jsonExpr `json:"r,omitempty"`       // bin
	Child   *jsonExpr `json:"child,omitempty"`   // widen / to_f64 / map_i64 / substr
	Fn      string    `json:"fn,omitempty"`      // map_i64 registry name
	Cost    float64   `json:"cost,omitempty"`    // map_i64
	From    int       `json:"from,omitempty"`    // substr
	Len     int       `json:"len,omitempty"`     // substr
	Col     *jsonExpr `json:"col,omitempty"`     // case_* input
	Value   string    `json:"value,omitempty"`   // case_eq
	Values  []string  `json:"values,omitempty"`  // case_in
	Pattern string    `json:"pattern,omitempty"` // case_like
	Then    int64     `json:"then,omitempty"`    // case_*
	Else    int64     `json:"else,omitempty"`    // case_*
}

type jsonAgg struct {
	Fn  string `json:"fn"`
	Col int    `json:"col,omitempty"`
	As  string `json:"as"`
}

type jsonSortKey struct {
	Col  int  `json:"col"`
	Desc bool `json:"desc,omitempty"`
}

// kindNames maps node kinds to their wire tags (and back, via wireKinds).
var kindNames = map[Kind]string{
	KindScan: "scan", KindSelect: "select", KindProject: "project",
	KindAgg: "agg", KindHashJoin: "hash_join", KindMergeJoin: "merge_join",
	KindSort: "sort", KindTopN: "top_n", KindLimit: "limit",
}

// validPredOps is the closed set of predicate operators the engine accepts.
var validPredOps = map[string]bool{
	"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true,
	"like": true, "notlike": true, "in": true,
}

// MarshalPlan serializes the builder's DAG. It fails on constructs with no
// wire form: a MapI64 without a registered function name, or a CaseLikeStr
// with a bare Match function instead of a pattern.
func MarshalPlan(b *Builder) ([]byte, error) {
	jp := jsonPlan{Name: b.name}
	for _, n := range b.nodes {
		jn, err := encodeNode(n)
		if err != nil {
			return nil, fmt.Errorf("plan: marshal %s: %w", n.label, err)
		}
		jp.Nodes = append(jp.Nodes, jn)
	}
	for _, r := range b.roots {
		jp.Roots = append(jp.Roots, jsonRoot{Name: r.Name, Node: r.Node.id})
	}
	return json.Marshal(&jp)
}

func encodeNode(n *Node) (jsonNode, error) {
	jn := jsonNode{Kind: kindNames[n.kind], Label: n.label}
	for _, c := range n.in {
		jn.In = append(jn.In, c.id)
	}
	switch n.kind {
	case KindScan:
		if n.table.Name == "" {
			return jn, fmt.Errorf("scan of unnamed table")
		}
		jn.Table = n.table.Name
		jn.Cols = n.cols
	case KindSelect:
		for _, p := range n.preds {
			jn.Preds = append(jn.Preds, encodePred(p))
		}
	case KindProject:
		for _, e := range n.exprs {
			je, err := encodeExpr(e.Expr)
			if err != nil {
				return jn, fmt.Errorf("column %s: %w", e.Name, err)
			}
			jn.Exprs = append(jn.Exprs, jsonProjExpr{Name: e.Name, Expr: je})
		}
	case KindAgg:
		jn.GroupBy = n.groupBy
		for _, a := range n.aggs {
			jn.Aggs = append(jn.Aggs, jsonAgg{Fn: string(a.Fn), Col: a.Col, As: a.As})
		}
	case KindHashJoin:
		switch n.joinKind {
		case engine.InnerJoin:
			jn.JoinKind = "inner"
		case engine.SemiJoin:
			jn.JoinKind = "semi"
		case engine.AntiJoin:
			jn.JoinKind = "anti"
		}
		jn.BuildKey, jn.ProbeKey = n.buildKey, n.probeKey
		jn.Payload = n.payload
		jn.BloomBits = n.bloomBits
	case KindMergeJoin:
		jn.LeftKey, jn.RightKey = n.leftKey, n.rightKey
		jn.LeftOut, jn.RightOut = n.leftOut, n.rightOut
	case KindSort, KindTopN, KindLimit:
		for _, k := range n.keys {
			jn.Keys = append(jn.Keys, jsonSortKey{Col: k.Col, Desc: k.Desc})
		}
		jn.Limit = n.limit
	default:
		return jn, fmt.Errorf("unknown node kind %d", n.kind)
	}
	return jn, nil
}

func encodePred(p Pred) jsonPred {
	ep := p.pred
	jp := jsonPred{Col: ep.Col, Op: ep.Op, I64: ep.I64, F64: ep.F64,
		Str: ep.Str, Set: ep.Set, SetI32: ep.SetI32}
	if ep.RHSCol >= 0 {
		rhs := ep.RHSCol
		jp.RHSCol = &rhs
	}
	if p.scalar != nil {
		jp.Scalar = &jsonScalar{From: p.scalar.From.id, Col: p.scalar.Col, Div: p.scalar.Div}
	}
	return jp
}

func encodeExpr(e expr.Node) (*jsonExpr, error) {
	switch n := e.(type) {
	case *expr.Col:
		return &jsonExpr{Kind: "col", Idx: n.Idx}, nil
	case *expr.ConstI64:
		return &jsonExpr{Kind: "i64", I64: n.V}, nil
	case *expr.ConstI32:
		return &jsonExpr{Kind: "i32", I32: n.V}, nil
	case *expr.ConstF64:
		return &jsonExpr{Kind: "f64", F64: n.V}, nil
	case *expr.BinOp:
		l, err := encodeExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := encodeExpr(n.R)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "bin", Op: n.Op, L: l, R: r}, nil
	case *expr.Widen:
		c, err := encodeExpr(n.Child)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "widen", Child: c}, nil
	case *expr.ToF64:
		c, err := encodeExpr(n.Child)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "to_f64", Child: c}, nil
	case *expr.MapI64:
		if n.Name == "" {
			return nil, fmt.Errorf("MapI64 with unregistered function (set Name via plan.RegisterMapI64)")
		}
		if _, ok := lookupMapI64(n.Name); !ok {
			return nil, fmt.Errorf("MapI64 function %q not registered", n.Name)
		}
		c, err := encodeExpr(n.Child)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "map_i64", Fn: n.Name, Cost: n.Cost, Child: c}, nil
	case *expr.Substr:
		c, err := encodeExpr(n.Child)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "substr", Child: c, From: n.From, Len: n.Len}, nil
	case *expr.CaseEqStr:
		c, err := encodeExpr(n.Col)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "case_eq", Col: c, Value: n.Value, Then: n.Then, Else: n.Else}, nil
	case *expr.CaseInStr:
		c, err := encodeExpr(n.Col)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "case_in", Col: c, Values: n.Values, Then: n.Then, Else: n.Else}, nil
	case *expr.CaseLikeStr:
		if n.Match != nil || n.Pattern == "" {
			return nil, fmt.Errorf("CaseLikeStr with opaque Match function (set Pattern instead)")
		}
		c, err := encodeExpr(n.Col)
		if err != nil {
			return nil, err
		}
		return &jsonExpr{Kind: "case_like", Col: c, Pattern: n.Pattern, Then: n.Then, Else: n.Else}, nil
	default:
		return nil, fmt.Errorf("unserializable expression %T", e)
	}
}

// UnmarshalPlan validates and rebuilds a serialized plan against the
// resolver's tables. The rebuilt builder replays the original's node
// creation order, so derived labels, schemas and explain output match the
// plan that was marshalled. All validation failures — unknown tables,
// kinds, operators or functions, out-of-range node/column references,
// schema mismatches — return errors; nothing in this path panics, because
// the input is wire data from an untrusted client.
func UnmarshalPlan(data []byte, resolve TableResolver) (b *Builder, err error) {
	// The Builder API reports schema lookup failures (bad column name, bad
	// column index, type mismatch) by panicking: fine for hand-written
	// plans, wrong for wire input. One recover turns every such report
	// into a decode error.
	defer func() {
		if r := recover(); r != nil {
			b, err = nil, fmt.Errorf("plan: invalid plan: %v", r)
		}
	}()

	var jp jsonPlan
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if jp.Name == "" {
		return nil, fmt.Errorf("plan: missing name")
	}
	if len(jp.Nodes) == 0 {
		return nil, fmt.Errorf("plan: no nodes")
	}
	if len(jp.Nodes) > MaxPlanNodes {
		return nil, fmt.Errorf("plan: %d nodes exceeds limit %d", len(jp.Nodes), MaxPlanNodes)
	}
	if len(jp.Roots) == 0 {
		return nil, fmt.Errorf("plan: no roots")
	}

	b = New(jp.Name)
	for id, jn := range jp.Nodes {
		if err := decodeNode(b, id, jn, resolve); err != nil {
			return nil, fmt.Errorf("plan: node %d (%s): %w", id, jn.Kind, err)
		}
		if jn.Label != "" {
			b.nodes[id].label = jn.Label
		}
	}
	for _, r := range jp.Roots {
		if r.Node < 0 || r.Node >= len(b.nodes) {
			return nil, fmt.Errorf("plan: root %q references node %d of %d", r.Name, r.Node, len(b.nodes))
		}
		if r.Name == "" {
			return nil, fmt.Errorf("plan: unnamed root")
		}
		b.NamedRoot(r.Name, b.nodes[r.Node])
	}
	return b, nil
}

// inputs resolves a node's input references; every reference must point at
// an already-built node, which is also what makes cycles unrepresentable.
func inputs(b *Builder, id int, refs []int, want int) ([]*Node, error) {
	if len(refs) != want {
		return nil, fmt.Errorf("want %d inputs, have %d", want, len(refs))
	}
	out := make([]*Node, len(refs))
	for i, r := range refs {
		if r < 0 || r >= id {
			return nil, fmt.Errorf("input %d out of range (must be an earlier node)", r)
		}
		out[i] = b.nodes[r]
	}
	return out, nil
}

func decodeNode(b *Builder, id int, jn jsonNode, resolve TableResolver) error {
	switch jn.Kind {
	case "scan":
		if _, err := inputs(b, id, jn.In, 0); err != nil {
			return err
		}
		if resolve == nil {
			return fmt.Errorf("no table resolver")
		}
		t, ok := resolve(jn.Table)
		if !ok {
			return fmt.Errorf("unknown table %q", jn.Table)
		}
		b.Scan(t, jn.Cols...)
	case "select":
		in, err := inputs(b, id, jn.In, 1)
		if err != nil {
			return err
		}
		preds := make([]Pred, len(jn.Preds))
		for i, jpred := range jn.Preds {
			p, err := decodePred(b, id, jpred, in[0].sch)
			if err != nil {
				return fmt.Errorf("pred %d: %w", i, err)
			}
			preds[i] = p
		}
		in[0].Select(preds...)
	case "project":
		in, err := inputs(b, id, jn.In, 1)
		if err != nil {
			return err
		}
		if len(jn.Exprs) == 0 {
			return fmt.Errorf("project with no expressions")
		}
		exprs := make([]engine.ProjExpr, len(jn.Exprs))
		for i, je := range jn.Exprs {
			e, err := decodeExpr(je.Expr, in[0].sch)
			if err != nil {
				return fmt.Errorf("column %s: %w", je.Name, err)
			}
			exprs[i] = engine.ProjExpr{Name: je.Name, Expr: e}
		}
		in[0].Project(exprs...)
	case "agg":
		in, err := inputs(b, id, jn.In, 1)
		if err != nil {
			return err
		}
		for _, g := range jn.GroupBy {
			if g < 0 || g >= len(in[0].sch) {
				return fmt.Errorf("group-by column %d out of range", g)
			}
		}
		aggs := make([]engine.AggSpec, len(jn.Aggs))
		for i, ja := range jn.Aggs {
			switch engine.AggFn(ja.Fn) {
			case engine.AggSum, engine.AggCount, engine.AggMin, engine.AggMax, engine.AggAvg, engine.AggFirst:
			default:
				return fmt.Errorf("unknown aggregate %q", ja.Fn)
			}
			if engine.AggFn(ja.Fn) != engine.AggCount && (ja.Col < 0 || ja.Col >= len(in[0].sch)) {
				return fmt.Errorf("aggregate column %d out of range", ja.Col)
			}
			aggs[i] = engine.AggSpec{Fn: engine.AggFn(ja.Fn), Col: ja.Col, As: ja.As}
		}
		in[0].Agg(jn.GroupBy, aggs...)
	case "hash_join":
		in, err := inputs(b, id, jn.In, 2)
		if err != nil {
			return err
		}
		var opts []JoinOption
		if jn.BloomBits > 0 {
			opts = append(opts, WithBloom(jn.BloomBits))
		}
		switch jn.JoinKind {
		case "inner":
			b.HashJoin(in[0], in[1], jn.BuildKey, jn.ProbeKey, jn.Payload, opts...)
		case "semi":
			b.SemiJoin(in[0], in[1], jn.BuildKey, jn.ProbeKey, opts...)
		case "anti":
			b.AntiJoin(in[0], in[1], jn.BuildKey, jn.ProbeKey, opts...)
		default:
			return fmt.Errorf("unknown join kind %q", jn.JoinKind)
		}
	case "merge_join":
		in, err := inputs(b, id, jn.In, 2)
		if err != nil {
			return err
		}
		b.MergeJoin(in[0], in[1], jn.LeftKey, jn.RightKey, jn.LeftOut, jn.RightOut)
	case "sort":
		in, err := inputs(b, id, jn.In, 1)
		if err != nil {
			return err
		}
		keys, err := decodeKeys(jn.Keys, in[0].sch)
		if err != nil {
			return err
		}
		in[0].Sort(keys...)
	case "top_n":
		in, err := inputs(b, id, jn.In, 1)
		if err != nil {
			return err
		}
		keys, err := decodeKeys(jn.Keys, in[0].sch)
		if err != nil {
			return err
		}
		if jn.Limit < 1 {
			return fmt.Errorf("top_n limit %d", jn.Limit)
		}
		in[0].TopN(jn.Limit, keys...)
	case "limit":
		in, err := inputs(b, id, jn.In, 1)
		if err != nil {
			return err
		}
		if jn.Limit < 1 {
			return fmt.Errorf("limit %d", jn.Limit)
		}
		in[0].Limit(jn.Limit)
	default:
		return fmt.Errorf("unknown node kind %q", jn.Kind)
	}
	return nil
}

func decodeKeys(jks []jsonSortKey, sch vector.Schema) ([]engine.SortKey, error) {
	if len(jks) == 0 {
		return nil, fmt.Errorf("no sort keys")
	}
	keys := make([]engine.SortKey, len(jks))
	for i, jk := range jks {
		if jk.Col < 0 || jk.Col >= len(sch) {
			return nil, fmt.Errorf("sort column %d out of range", jk.Col)
		}
		keys[i] = engine.SortKey{Col: jk.Col, Desc: jk.Desc}
	}
	return keys, nil
}

func decodePred(b *Builder, id int, jp jsonPred, sch vector.Schema) (Pred, error) {
	if !validPredOps[jp.Op] {
		return Pred{}, fmt.Errorf("unknown operator %q", jp.Op)
	}
	if jp.Col < 0 || jp.Col >= len(sch) {
		return Pred{}, fmt.Errorf("column %d out of range", jp.Col)
	}
	ep := engine.Pred{Col: jp.Col, Op: jp.Op, RHSCol: -1,
		I64: jp.I64, F64: jp.F64, Str: jp.Str, Set: jp.Set, SetI32: jp.SetI32}
	if jp.RHSCol != nil {
		if *jp.RHSCol < 0 || *jp.RHSCol >= len(sch) {
			return Pred{}, fmt.Errorf("rhs column %d out of range", *jp.RHSCol)
		}
		ep.RHSCol = *jp.RHSCol
	}
	p := Pred{pred: ep}
	if jp.Scalar != nil {
		if jp.Scalar.From < 0 || jp.Scalar.From >= id {
			return Pred{}, fmt.Errorf("scalar source %d out of range (must be an earlier node)", jp.Scalar.From)
		}
		src := b.nodes[jp.Scalar.From]
		if _, err := indexOf(src.sch, jp.Scalar.Col); err != nil {
			return Pred{}, fmt.Errorf("scalar column: %w", err)
		}
		p.scalar = &Scalar{From: src, Col: jp.Scalar.Col, Div: jp.Scalar.Div}
	}
	return p, nil
}

// indexOf is the error-returning twin of Schema.MustIndexOf for wire input.
func indexOf(sch vector.Schema, name string) (int, error) {
	for i, c := range sch {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("unknown column %q", name)
}

func decodeExpr(je *jsonExpr, sch vector.Schema) (expr.Node, error) {
	if je == nil {
		return nil, fmt.Errorf("missing expression")
	}
	switch je.Kind {
	case "col":
		if je.Idx < 0 || je.Idx >= len(sch) {
			return nil, fmt.Errorf("column %d out of range", je.Idx)
		}
		return &expr.Col{Idx: je.Idx}, nil
	case "i64":
		return &expr.ConstI64{V: je.I64}, nil
	case "i32":
		return &expr.ConstI32{V: je.I32}, nil
	case "f64":
		return &expr.ConstF64{V: je.F64}, nil
	case "bin":
		switch je.Op {
		case "+", "-", "*", "/":
		default:
			return nil, fmt.Errorf("unknown arithmetic operator %q", je.Op)
		}
		l, err := decodeExpr(je.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(je.R, sch)
		if err != nil {
			return nil, err
		}
		return &expr.BinOp{Op: je.Op, L: l, R: r}, nil
	case "widen":
		c, err := decodeExpr(je.Child, sch)
		if err != nil {
			return nil, err
		}
		return &expr.Widen{Child: c}, nil
	case "to_f64":
		c, err := decodeExpr(je.Child, sch)
		if err != nil {
			return nil, err
		}
		return &expr.ToF64{Child: c}, nil
	case "map_i64":
		fn, ok := lookupMapI64(je.Fn)
		if !ok {
			return nil, fmt.Errorf("unknown map function %q", je.Fn)
		}
		c, err := decodeExpr(je.Child, sch)
		if err != nil {
			return nil, err
		}
		return &expr.MapI64{Child: c, Fn: fn, Name: je.Fn, Cost: je.Cost}, nil
	case "substr":
		if je.From < 0 || je.Len < 0 {
			return nil, fmt.Errorf("substr bounds [%d, +%d)", je.From, je.Len)
		}
		c, err := decodeExpr(je.Child, sch)
		if err != nil {
			return nil, err
		}
		return &expr.Substr{Child: c, From: je.From, Len: je.Len}, nil
	case "case_eq":
		c, err := decodeExpr(je.Col, sch)
		if err != nil {
			return nil, err
		}
		return &expr.CaseEqStr{Col: c, Value: je.Value, Then: je.Then, Else: je.Else}, nil
	case "case_in":
		c, err := decodeExpr(je.Col, sch)
		if err != nil {
			return nil, err
		}
		return &expr.CaseInStr{Col: c, Values: je.Values, Then: je.Then, Else: je.Else}, nil
	case "case_like":
		if je.Pattern == "" {
			return nil, fmt.Errorf("case_like without pattern")
		}
		c, err := decodeExpr(je.Col, sch)
		if err != nil {
			return nil, err
		}
		return &expr.CaseLikeStr{Col: c, Pattern: je.Pattern, Then: je.Then, Else: je.Else}, nil
	default:
		return nil, fmt.Errorf("unknown expression kind %q", je.Kind)
	}
}
