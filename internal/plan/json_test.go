package plan

import (
	"encoding/json"
	"strings"
	"testing"

	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// jsonTestTable builds a small named table for codec tests.
func jsonTestTable() *engine.Table {
	return engine.NewTable("t",
		vector.Schema{{Name: "a", Type: vector.I64}, {Name: "b", Type: vector.I64}},
		[]*vector.Vector{
			vector.FromI64([]int64{3, 1, 2, 5, 4}),
			vector.FromI64([]int64{30, 10, 20, 50, 40}),
		})
}

func jsonTestResolver(t *engine.Table) TableResolver {
	return func(name string) (*engine.Table, bool) {
		if name == t.Name {
			return t, true
		}
		return nil, false
	}
}

// mutate unmarshals the wire form into a generic document, applies f, and
// re-marshals — the codec equivalent of a hostile client editing one field.
func mutate(t *testing.T, data []byte, f func(doc map[string]any)) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	f(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func node(doc map[string]any, i int) map[string]any {
	return doc["nodes"].([]any)[i].(map[string]any)
}

// TestJSONRejectsMalformedPlans feeds the decoder a corpus of invalid wire
// plans; every one must come back as an error — never a panic, never a
// silently mis-built plan.
func TestJSONRejectsMalformedPlans(t *testing.T) {
	tab := jsonTestTable()
	b := New("T")
	sel := b.Scan(tab, "a", "b").Select(CmpVal(0, ">", 1))
	b.Root(sel.Agg(nil, engine.Agg(engine.AggSum, 1, "s")))
	valid, err := MarshalPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPlan(valid, jsonTestResolver(tab)); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"junk", []byte("{"), "unexpected end"},
		{"no nodes", []byte(`{"name":"T","nodes":[],"roots":[{"name":"out","node":0}]}`), "no nodes"},
		{"no roots", mutate(t, valid, func(d map[string]any) { d["roots"] = []any{} }), "no roots"},
		{"no name", mutate(t, valid, func(d map[string]any) { d["name"] = "" }), "missing name"},
		{"unknown table", mutate(t, valid, func(d map[string]any) { node(d, 0)["table"] = "nope" }), "unknown table"},
		{"unknown kind", mutate(t, valid, func(d map[string]any) { node(d, 1)["kind"] = "warp" }), "unknown node kind"},
		{"unknown op", mutate(t, valid, func(d map[string]any) {
			node(d, 1)["preds"].([]any)[0].(map[string]any)["op"] = "~="
		}), "unknown operator"},
		{"pred column out of range", mutate(t, valid, func(d map[string]any) {
			node(d, 1)["preds"].([]any)[0].(map[string]any)["col"] = 9.0
		}), "out of range"},
		{"forward input reference", mutate(t, valid, func(d map[string]any) {
			node(d, 1)["in"] = []any{2.0} // select fed by its own consumer: a cycle
		}), "earlier node"},
		{"self input reference", mutate(t, valid, func(d map[string]any) {
			node(d, 1)["in"] = []any{1.0}
		}), "earlier node"},
		{"root out of range", mutate(t, valid, func(d map[string]any) {
			d["roots"].([]any)[0].(map[string]any)["node"] = 7.0
		}), "references node"},
		{"unknown aggregate", mutate(t, valid, func(d map[string]any) {
			node(d, 2)["aggs"].([]any)[0].(map[string]any)["fn"] = "median"
		}), "unknown aggregate"},
		{"scan with inputs", mutate(t, valid, func(d map[string]any) {
			node(d, 0)["in"] = []any{0.0}
		}), "inputs"},
		{"wrong input arity", mutate(t, valid, func(d map[string]any) {
			node(d, 1)["in"] = []any{}
		}), "inputs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalPlan(tc.data, jsonTestResolver(tab))
			if err == nil {
				t.Fatalf("accepted invalid plan %s", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestJSONRecoversSchemaPanics drives wire input into Builder paths that
// report failure by panicking (bad join key names) and asserts the decoder
// converts them to errors.
func TestJSONRecoversSchemaPanics(t *testing.T) {
	tab := jsonTestTable()
	b := New("J")
	left := b.Scan(tab, "a", "b")
	right := b.Scan(tab, "a")
	b.Root(b.HashJoin(left, right, "b", "a", []string{"b"}))
	valid, err := MarshalPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	bad := mutate(t, valid, func(d map[string]any) { node(d, 2)["build_key"] = "zzz" })
	if _, err := UnmarshalPlan(bad, jsonTestResolver(tab)); err == nil {
		t.Fatal("accepted join with unknown key column")
	} else if !strings.Contains(err.Error(), "invalid plan") {
		t.Errorf("panic not converted to decode error: %v", err)
	}
}

// TestJSONUnserializableExprs pins the marshal-side contract: expression
// nodes carrying opaque Go functions refuse to serialize instead of
// producing a wire form that cannot be rebuilt.
func TestJSONUnserializableExprs(t *testing.T) {
	tab := jsonTestTable()

	b := New("M")
	scan := b.Scan(tab, "a")
	b.Root(scan.Project(engine.ProjExpr{Name: "x", Expr: &expr.MapI64{
		Child: scan.Col("a"), Fn: func(v int64) int64 { return v }}}))
	if _, err := MarshalPlan(b); err == nil || !strings.Contains(err.Error(), "RegisterMapI64") {
		t.Errorf("unnamed MapI64 marshalled: %v", err)
	}

	b2 := New("L")
	scan2 := b2.Scan(tab, "a")
	b2.Root(scan2.Project(engine.ProjExpr{Name: "x", Expr: &expr.CaseLikeStr{
		Col: scan2.Col("a"), Match: func(string) bool { return true }, Then: 1}}))
	if _, err := MarshalPlan(b2); err == nil || !strings.Contains(err.Error(), "Pattern") {
		t.Errorf("opaque CaseLikeStr marshalled: %v", err)
	}
}

// TestJSONRegisteredMapFn round-trips a MapI64 through the registry.
func TestJSONRegisteredMapFn(t *testing.T) {
	RegisterMapI64("test.double", func(v int64) int64 { return 2 * v })
	tab := jsonTestTable()
	build := func() *Builder {
		b := New("R")
		scan := b.Scan(tab, "a")
		b.Root(scan.Project(engine.ProjExpr{Name: "x", Expr: &expr.MapI64{
			Child: scan.Col("a"), Name: "test.double",
			Fn: func(v int64) int64 { return 2 * v }}}))
		return b
	}
	data, err := MarshalPlan(build())
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := UnmarshalPlan(data, jsonTestResolver(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rebuilt.Explain(1), build().Explain(1); got != want {
		t.Errorf("explain drift:\n%s\nvs\n%s", got, want)
	}
	bad := mutate(t, data, func(d map[string]any) {
		node(d, 1)["exprs"].([]any)[0].(map[string]any)["expr"].(map[string]any)["fn"] = "test.missing"
	})
	if _, err := UnmarshalPlan(bad, jsonTestResolver(tab)); err == nil || !strings.Contains(err.Error(), "unknown map function") {
		t.Errorf("unknown map function accepted: %v", err)
	}
}
