package plan

import (
	"strings"
	"testing"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// testTable builds an n-row table with columns k (0..n-1, I32), v
// (k*3, I64) and tag (cycling strings).
func testTable(n int) *engine.Table {
	k := make([]int32, n)
	v := make([]int64, n)
	tag := make([]string, n)
	names := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		k[i] = int32(i)
		v[i] = int64(i) * 3
		tag[i] = names[i%3]
	}
	return engine.NewTable("t", vector.Schema{
		{Name: "k", Type: vector.I32},
		{Name: "v", Type: vector.I64},
		{Name: "tag", Type: vector.Str},
	}, []*vector.Vector{vector.FromI32(k), vector.FromI64(v), vector.FromStr(tag)})
}

func testSession(p int) *core.Session {
	return core.NewSession(primitive.NewDictionary(primitive.Everything()), hw.Machine1(),
		core.WithVectorSize(64), core.WithSeed(3), core.WithParallelism(p))
}

func TestLabelsDerivedFromStructure(t *testing.T) {
	tab := testTable(10)
	b := New("T")
	s1 := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 5))
	s2 := b.Scan(tab, "k").Select(CmpVal(0, ">=", 5))
	p1 := s1.Project(engine.Keep("k", 0))
	if got := s1.Label(); got != "T/sel0" {
		t.Errorf("first select label = %q, want T/sel0", got)
	}
	if got := s2.Label(); got != "T/sel1" {
		t.Errorf("second select label = %q, want T/sel1", got)
	}
	if got := p1.Label(); got != "T/proj0" {
		t.Errorf("first project label = %q, want T/proj0", got)
	}
	// An identically built plan derives identical labels.
	b2 := New("T")
	r1 := b2.Scan(tab, "k", "v").Select(CmpVal(0, "<", 5))
	if r1.Label() != s1.Label() {
		t.Errorf("labels not reproducible: %q vs %q", r1.Label(), s1.Label())
	}
}

func TestSchemaPropagation(t *testing.T) {
	tab := testTable(10)
	b := New("T")
	sel := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 5))
	proj := sel.Project(
		engine.Keep("k", 0),
		engine.ProjExpr{Name: "v2", Expr: expr.Mul(sel.Col("v"), &expr.ConstI64{V: 2})})
	agg := proj.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "s"))
	if got := proj.Schema(); len(got) != 2 || got[1].Name != "v2" || got[1].Type != vector.I64 {
		t.Errorf("project schema = %v", got)
	}
	// Group key k widens from I32 to I64, exactly like engine.HashAgg.
	if got := agg.Schema(); got[0].Type != vector.I64 || got[1].Name != "s" {
		t.Errorf("agg schema = %v", got)
	}
	if agg.Idx("s") != 1 {
		t.Errorf("Idx(s) = %d", agg.Idx("s"))
	}
}

func TestRunPipeline(t *testing.T) {
	tab := testTable(100)
	b := New("T")
	sel := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 50))
	proj := sel.Project(
		engine.ProjExpr{Name: "v2", Expr: expr.Mul(sel.Col("v"), &expr.ConstI64{V: 2})})
	b.Root(proj.Agg(nil, engine.Agg(engine.AggSum, 0, "total")))
	out, err := b.Bind(testSession(1)).Run(b.MainRoot())
	if err != nil {
		t.Fatal(err)
	}
	// sum(2 * 3k) for k in [0,50) = 6 * 49*50/2
	if got, want := out.Col("total").GetI64(0), int64(6*49*50/2); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
}

// TestSharedSubtreeMaterializedOnce: a node with two consumers must
// execute once; both consumers read the same materialized table.
func TestSharedSubtreeMaterializedOnce(t *testing.T) {
	tab := testTable(100)
	b := New("T")
	sel := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 40))
	aggA := sel.Agg(nil, engine.Agg(engine.AggSum, 1, "sv"))
	aggB := sel.Agg(nil, engine.Agg(engine.AggCount, -1, "n"))
	b.NamedRoot("a", aggA)
	b.NamedRoot("b", aggB)
	if refs := b.refCounts(); refs[sel.id] != 2 {
		t.Fatalf("shared select refcount = %d, want 2", refs[sel.id])
	}
	s := testSession(1)
	ex := b.Bind(s)
	ta, err := ex.Run(aggA)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ex.Run(aggB)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ta.Col("sv").GetI64(0), int64(3*39*40/2); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if got := tb.Col("n").GetI64(0); got != 40 {
		t.Errorf("count = %d, want 40", got)
	}
	// The shared select's primitive instance ran its tuples exactly once:
	// 100 input rows, not 200.
	for _, inst := range s.Instances() {
		if strings.HasPrefix(inst.Label, "T/sel0/") {
			var tuples int64
			for i := range inst.PerFlavor {
				tuples += inst.PerFlavor[i].Tuples
			}
			if tuples != 100 {
				t.Errorf("shared select processed %d tuples, want 100 (one execution)", tuples)
			}
		}
	}
}

func TestScalarPredicates(t *testing.T) {
	tab := testTable(100)
	b := New("T")
	base := b.Scan(tab, "k", "v").Select(CmpVal(0, ">=", 0))
	maxAgg := base.Agg(nil, engine.Agg(engine.AggMax, 1, "mx"))
	best := base.Select(CmpScalar(1, "==", ScalarOf(maxAgg, "mx")))
	b.Root(best)
	out, err := b.Bind(testSession(1)).Run(best)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 1 || out.Col("v").GetI64(0) != 297 {
		t.Errorf("scalar == max returned %d rows (v=%v)", out.Rows(), out.Cols)
	}
}

func TestScalarDivBy(t *testing.T) {
	tab := testTable(100)
	b := New("T")
	base := b.Scan(tab, "k", "v").Select(CmpVal(0, ">=", 0))
	sumAgg := base.Agg(nil, engine.Agg(engine.AggSum, 1, "s"))               // 14850
	over := base.Select(CmpScalar(1, ">", ScalarOf(sumAgg, "s").DivBy(100))) // v > 148
	b.Root(over.Agg(nil, engine.Agg(engine.AggCount, -1, "n")))
	out, err := b.Bind(testSession(1)).Run(b.MainRoot())
	if err != nil {
		t.Fatal(err)
	}
	// v = 3k > 148 <=> k >= 50, so 50 rows.
	if got := out.Col("n").GetI64(0); got != 50 {
		t.Errorf("count = %d, want 50", got)
	}
}

func TestScalarOverEmptyResultErrors(t *testing.T) {
	tab := testTable(10)
	b := New("T")
	none := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 0))
	filtered := b.Scan(tab, "k", "v").Select(CmpScalar(1, ">", ScalarOf(none, "v")))
	b.Root(filtered)
	if _, err := b.Bind(testSession(1)).Run(filtered); err == nil {
		t.Fatal("scalar over empty result did not error")
	}
}

// TestParallelLoweringMatchesSerial: the planner's derived partitioning
// must produce bit-identical tables at any P.
func TestParallelLoweringMatchesSerial(t *testing.T) {
	tab := testTable(4096)
	build := func() *Builder {
		b := New("T")
		sel := b.Scan(tab, "k", "v", "tag").Select(CmpVal(0, "<", 3000))
		proj := sel.Project(
			engine.Keep("tag", 2),
			engine.ProjExpr{Name: "v2", Expr: expr.Mul(sel.Col("v"), &expr.ConstI64{V: 2})})
		agg := proj.Agg([]int{0}, engine.Agg(engine.AggSum, 1, "s"))
		b.Root(agg.Sort(engine.Asc(0)))
		return b
	}
	var want string
	for _, p := range []int{1, 2, 4} {
		s := testSession(p)
		b := build()
		out, err := b.Bind(s).Run(b.MainRoot())
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		got := engine.TableString(out, 0)
		if p == 1 {
			want = got
			if len(s.Fragments()) != 0 {
				t.Fatalf("serial run spawned fragments")
			}
			continue
		}
		if got != want {
			t.Errorf("P=%d result differs from serial", p)
		}
		if len(s.Fragments()) == 0 {
			t.Errorf("P=%d: derived chain did not fan out", p)
		}
	}
}

// TestChainDetection: partitionability is a property of plan shape.
func TestChainDetection(t *testing.T) {
	tab := testTable(4096)
	b := New("T")
	sel := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 9))
	agg := sel.Agg(nil, engine.Agg(engine.AggCount, -1, "n"))
	overAgg := agg.Select(CmpVal(0, ">", 0)) // select over a blocking agg
	b.Root(overAgg)
	refs := b.refCounts()
	if c := chainOf(sel, refs, nil); c == nil || c.scan == nil || len(c.stack) != 1 {
		t.Errorf("scan→select chain not detected: %+v", c)
	}
	if c := chainOf(overAgg, refs, nil); c != nil {
		t.Errorf("select over aggregate wrongly detected as partitionable chain")
	}
	if c := chainOf(agg, refs, nil); c != nil {
		t.Errorf("aggregate wrongly detected as chain top")
	}
}

func TestJoinsSortsLimits(t *testing.T) {
	left := engine.NewTable("dim", vector.Schema{
		{Name: "id", Type: vector.I32},
		{Name: "name", Type: vector.Str},
	}, []*vector.Vector{
		vector.FromI32([]int32{0, 1, 2}),
		vector.FromStr([]string{"zero", "one", "two"}),
	})
	tab := testTable(30)
	b := New("T")
	mod := b.Scan(tab, "k", "v").Project(
		engine.ProjExpr{Name: "m", Expr: &expr.MapI64{Child: expr.ToI64(&expr.Col{Idx: 0}), Fn: func(v int64) int64 { return v % 3 }}},
		engine.Keep("v", 1))
	j := b.HashJoin(b.Scan(left), mod, "id", "m", []string{"name"})
	top := j.TopN(5, engine.Desc(j.Idx("v")))
	b.Root(top)
	out, err := b.Bind(testSession(1)).Run(top)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 5 {
		t.Fatalf("topn rows = %d", out.Rows())
	}
	if got := out.Col("v").GetI64(0); got != 87 {
		t.Errorf("top v = %d, want 87", got)
	}
	if got := out.Col("name").GetStr(0); got != "two" {
		t.Errorf("top name = %q, want two (29 %% 3 = 2)", got)
	}
}

func TestMergeJoinAndSemiAnti(t *testing.T) {
	l := engine.NewTable("l", vector.Schema{
		{Name: "a", Type: vector.I32}, {Name: "x", Type: vector.I64},
	}, []*vector.Vector{vector.FromI32([]int32{1, 2, 3, 5}), vector.FromI64([]int64{10, 20, 30, 50})})
	r := engine.NewTable("r", vector.Schema{
		{Name: "b", Type: vector.I32}, {Name: "y", Type: vector.I64},
	}, []*vector.Vector{vector.FromI32([]int32{2, 3, 4, 5}), vector.FromI64([]int64{200, 300, 400, 500})})
	b := New("T")
	mj := b.MergeJoin(b.Scan(l), b.Scan(r), "a", "b", []string{"a", "x"}, []string{"y"})
	b.Root(mj)
	semi := b.SemiJoin(b.Scan(l), b.Scan(r), "a", "b")
	b.NamedRoot("semi", semi)
	anti := b.AntiJoin(b.Scan(l), b.Scan(r), "a", "b")
	b.NamedRoot("anti", anti)
	ex := b.Bind(testSession(1))
	mt, err := ex.Run(mj)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Rows() != 3 || mt.Col("y").GetI64(0) != 200 {
		t.Errorf("merge join rows = %d", mt.Rows())
	}
	st, err := ex.Run(semi)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows() != 3 {
		t.Errorf("semi rows = %d, want 3", st.Rows())
	}
	at, err := ex.Run(anti)
	if err != nil {
		t.Fatal(err)
	}
	if at.Rows() != 1 || at.Col("b").GetI64(0) != 4 {
		t.Errorf("anti rows = %d", at.Rows())
	}
}

func TestExplainRendersBothLevels(t *testing.T) {
	tab := testTable(4096)
	b := New("T")
	sel := b.Scan(tab, "k", "v").Select(CmpVal(0, "<", 3000))
	b.Root(sel.Agg(nil, engine.Agg(engine.AggSum, 1, "s")))
	out := b.Explain(4)
	for _, want := range []string{
		"plan T",
		"logical (out):",
		"physical (out, P=4):",
		"Select [T/sel0] (k < 3000)",
		"Exchange [order-preserving merge of 4 morsel fragments]",
		"RangeScan[morsel] t (k, v)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain misses %q:\n%s", want, out)
		}
	}
	if strings.Contains(b.Explain(1), "Exchange") {
		t.Errorf("serial explain shows a fan-out")
	}
}

func TestCrossBuilderNodePanics(t *testing.T) {
	tab := testTable(4)
	b1 := New("A")
	b2 := New("B")
	n1 := b1.Scan(tab, "k")
	defer func() {
		if recover() == nil {
			t.Error("mixing builders did not panic")
		}
	}()
	b2.SemiJoin(n1, b2.Scan(tab, "k"), "k", "k")
}

// TestExplainSharedScalarSource: a scalar source that is also a regular
// plan child must render its subtree body once — not collapse to "ref"
// lines everywhere (the scalar renderer must not pre-mark it as seen).
func TestExplainSharedScalarSource(t *testing.T) {
	tab := testTable(100)
	b := New("T")
	base := b.Scan(tab, "k", "v").Select(CmpVal(0, ">=", 0))
	agg := base.Agg(nil, engine.Agg(engine.AggMax, 1, "mx"))
	filt := base.Select(CmpScalar(1, "<", ScalarOf(agg, "mx")))
	b.Root(b.HashJoin(agg, filt, "mx", "v", nil))
	out := b.Explain(1)
	if !strings.Contains(out, "HashAgg [T/agg0]") {
		t.Errorf("shared scalar source body never rendered in explain:\n%s", out)
	}
}
