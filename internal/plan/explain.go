// Explain rendering: the logical DAG and the statically simulated physical
// lowering, partition annotations included. The physical section mirrors
// Exec's decisions (chain detection, shared-subtree materialization,
// engine.PartitionCount) without executing anything, so explain output is
// cheap and scalar constants print symbolically.
package plan

import (
	"fmt"
	"strconv"
	"strings"

	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// Explain renders the plan's logical DAG and its physical lowering at
// pipeline parallelism p, one section per registered root.
func (b *Builder) Explain(p int) string {
	var out strings.Builder
	fmt.Fprintf(&out, "plan %s\n", b.name)
	refs := b.refCounts()
	for _, r := range b.Roots() {
		fmt.Fprintf(&out, "logical (%s):\n", r.Name)
		lr := &renderer{refs: refs, seen: map[int]bool{}}
		lr.logical(&out, r.Node, 1)
	}
	for _, r := range b.Roots() {
		fmt.Fprintf(&out, "physical (%s, P=%d):\n", r.Name, p)
		pr := &renderer{refs: refs, seen: map[int]bool{}, parallelism: p}
		pr.physical(&out, r.Node, 1)
	}
	return out.String()
}

// renderer walks one root, tracking shared subtrees so each prints once.
type renderer struct {
	refs        []int
	seen        map[int]bool
	parallelism int
}

func indent(w *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		w.WriteString("  ")
	}
}

// logical prints the declarative tree.
func (r *renderer) logical(w *strings.Builder, n *Node, depth int) {
	indent(w, depth)
	if r.refs[n.id] > 1 {
		if r.seen[n.id] {
			fmt.Fprintf(w, "ref %s\n", n.label)
			return
		}
		r.seen[n.id] = true
		fmt.Fprintf(w, "%s (shared x%d)\n", r.describe(n), r.refs[n.id])
	} else {
		fmt.Fprintf(w, "%s\n", r.describe(n))
	}
	for _, p := range n.preds {
		if p.scalar != nil && !r.seen[p.scalar.From.id] {
			// Scalar subplans hang off the predicate, not the child list.
			// The recursion itself marks shared sources as seen once their
			// body renders; pre-marking here would make a source that is
			// also a plan child print only "ref" lines everywhere.
			indent(w, depth+1)
			fmt.Fprintf(w, "scalar %s:\n", p.scalar.String())
			r.logical(w, p.scalar.From, depth+2)
		}
	}
	for _, c := range n.in {
		r.logical(w, c, depth+1)
	}
}

// physical prints the lowered shape: materialization points, partitioned
// pipelines with their fan-out, and plain operators.
func (r *renderer) physical(w *strings.Builder, n *Node, depth int) {
	if r.seen[n.id] {
		indent(w, depth)
		fmt.Fprintf(w, "Scan <- materialized %s\n", n.label)
		return
	}
	shared := n.kind != KindScan && r.refs[n.id] > 1
	if shared {
		r.seen[n.id] = true
		indent(w, depth)
		fmt.Fprintf(w, "Materialize %s\n", n.label)
		depth++
	}
	if c := chainOf(n, r.refs, nil); c != nil {
		r.renderChain(w, c, depth)
		return
	}
	indent(w, depth)
	fmt.Fprintf(w, "%s\n", r.describe(n))
	for _, p := range n.preds {
		if p.scalar != nil && !r.seen[p.scalar.From.id] {
			indent(w, depth+1)
			fmt.Fprintf(w, "scalar %s:\n", p.scalar.String())
			r.physical(w, p.scalar.From, depth+2)
		}
	}
	for _, child := range n.in {
		r.physical(w, child, depth+1)
	}
}

// renderChain prints a morsel-partitionable pipeline with the fan-out the
// runtime will choose (exact when the base row count is known statically).
func (r *renderer) renderChain(w *strings.Builder, c *chain, depth int) {
	indent(w, depth)
	if c.scan != nil {
		rows := c.scan.table.Rows()
		parts := engine.PartitionCount(r.parallelism, rows)
		if parts > 1 {
			fmt.Fprintf(w, "Exchange [order-preserving merge of %d morsel fragments]\n", parts)
		} else {
			fmt.Fprintf(w, "Pipeline [partitionable; serial: P=%d, rows=%d]\n", r.parallelism, rows)
		}
	} else {
		fmt.Fprintf(w, "Pipeline [partitionable; fan-out <=%d decided at run time]\n", r.parallelism)
	}
	depth++
	for i, nd := range c.stack {
		indent(w, depth+i)
		fmt.Fprintf(w, "%s\n", r.describe(nd))
		for _, p := range nd.preds {
			if p.scalar != nil && !r.seen[p.scalar.From.id] {
				indent(w, depth+i+1)
				fmt.Fprintf(w, "scalar %s:\n", p.scalar.String())
				r.physical(w, p.scalar.From, depth+i+2)
			}
		}
	}
	indent(w, depth+len(c.stack))
	if c.scan != nil && c.scan.table.Enc != nil {
		detail := r.scanDetail(c.scan)
		if nd := c.pushdownSelect(); nd != nil {
			// The split runs on the unresolved predicates: pushability
			// depends only on operator shape and column encoding, never on
			// the (possibly scalar-deferred) constant, so the count always
			// matches the planner's resolved split.
			preds := make([]engine.Pred, len(nd.preds))
			for i, p := range nd.preds {
				preds[i] = p.pred
			}
			if push, _ := engine.PushdownSplit(c.scan.table, c.scan.cols, preds); len(push) > 0 {
				detail += fmt.Sprintf(" pushdown=%d/%d conjuncts", len(push), len(preds))
			}
		}
		fmt.Fprintf(w, "EncodedRangeScan[morsel] %s\n", detail)
	} else if c.scan != nil {
		fmt.Fprintf(w, "RangeScan[morsel] %s\n", r.scanDetail(c.scan))
	} else {
		fmt.Fprintf(w, "RangeScan[morsel] <- materialized:\n")
		r.physical(w, c.base, depth+len(c.stack)+1)
	}
}

// describe renders one node's operator line.
func (r *renderer) describe(n *Node) string {
	switch n.kind {
	case KindScan:
		return "Scan " + r.scanDetail(n)
	case KindSelect:
		preds := make([]string, len(n.preds))
		for i, p := range n.preds {
			preds[i] = predString(p, n.in[0].sch)
		}
		return fmt.Sprintf("Select [%s] (%s)", n.label, strings.Join(preds, " && "))
	case KindProject:
		cols := make([]string, len(n.exprs))
		for i, e := range n.exprs {
			cols[i] = e.Name + "=" + exprString(e.Expr, n.in[0].sch)
		}
		return fmt.Sprintf("Project [%s] (%s)", n.label, strings.Join(cols, ", "))
	case KindAgg:
		groups := make([]string, len(n.groupBy))
		in := n.in[0].sch
		for i, g := range n.groupBy {
			groups[i] = in[g].Name
		}
		aggs := make([]string, len(n.aggs))
		for i, a := range n.aggs {
			arg := ""
			if a.Fn != engine.AggCount {
				arg = in[a.Col].Name
			}
			aggs[i] = fmt.Sprintf("%s(%s) as %s", a.Fn, arg, a.As)
		}
		return fmt.Sprintf("HashAgg [%s] groups=(%s) aggs=(%s)", n.label,
			strings.Join(groups, ", "), strings.Join(aggs, ", "))
	case KindHashJoin:
		kind := "inner"
		switch n.joinKind {
		case engine.SemiJoin:
			kind = "semi"
		case engine.AntiJoin:
			kind = "anti"
		}
		s := fmt.Sprintf("Join [%s] %s build.%s = probe.%s", n.label, kind, n.buildKey, n.probeKey)
		if len(n.payload) > 0 {
			s += " payload=(" + strings.Join(n.payload, ", ") + ")"
		}
		// The plan no longer bakes in the algorithm: render the decision
		// point the operator resolves at Open, arm 0 first (the default a
		// pinned or cold policy starts from).
		arms := engine.JoinStrategyArms(n.joinKind, n.bloomBits)
		s += fmt.Sprintf(" strategy=decision(%s)", strings.Join(arms, "|"))
		if n.bloomBits > 0 {
			s += fmt.Sprintf(" bloom=%dbits/key", n.bloomBits)
		}
		return s
	case KindMergeJoin:
		return fmt.Sprintf("MergeJoin [%s] left.%s = right.%s out=(%s | %s)", n.label,
			n.leftKey, n.rightKey, strings.Join(n.leftOut, ", "), strings.Join(n.rightOut, ", "))
	case KindSort:
		return fmt.Sprintf("Sort [%s] keys=(%s)", n.label, keysString(n.keys, n.sch))
	case KindTopN:
		return fmt.Sprintf("TopN [%s] n=%d keys=(%s)", n.label, n.limit, keysString(n.keys, n.sch))
	case KindLimit:
		return fmt.Sprintf("Limit [%s] n=%d", n.label, n.limit)
	default:
		return n.kind.String()
	}
}

func (r *renderer) scanDetail(n *Node) string {
	cols := n.cols
	if len(cols) == 0 {
		cols = make([]string, len(n.sch))
		for i, c := range n.sch {
			cols[i] = c.Name
		}
	}
	detail := fmt.Sprintf("%s (%s)", n.table.Name, strings.Join(cols, ", "))
	if n.table.Enc != nil {
		detail += " [encoded]"
	}
	return detail
}

func keysString(keys []engine.SortKey, sch vector.Schema) string {
	out := make([]string, len(keys))
	for i, k := range keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		out[i] = sch[k.Col].Name + " " + dir
	}
	return strings.Join(out, ", ")
}

// predString renders one predicate against the input schema.
func predString(p Pred, sch vector.Schema) string {
	ep := p.pred
	lhs := sch[ep.Col].Name
	if p.scalar != nil {
		return fmt.Sprintf("%s %s %s", lhs, ep.Op, p.scalar.String())
	}
	switch ep.Op {
	case "like", "notlike":
		op := "LIKE"
		if ep.Op == "notlike" {
			op = "NOT LIKE"
		}
		return fmt.Sprintf("%s %s %q", lhs, op, ep.Str)
	case "in":
		if len(ep.Set) > 0 {
			return fmt.Sprintf("%s IN (%s)", lhs, strings.Join(ep.Set, ", "))
		}
		vals := make([]string, len(ep.SetI32))
		for i, v := range ep.SetI32 {
			vals[i] = strconv.Itoa(int(v))
		}
		return fmt.Sprintf("%s IN (%s)", lhs, strings.Join(vals, ", "))
	}
	if ep.RHSCol >= 0 {
		return fmt.Sprintf("%s %s %s", lhs, ep.Op, sch[ep.RHSCol].Name)
	}
	switch sch[ep.Col].Type {
	case vector.F64:
		return fmt.Sprintf("%s %s %g", lhs, ep.Op, ep.F64)
	case vector.Str:
		return fmt.Sprintf("%s %s %q", lhs, ep.Op, ep.Str)
	default:
		return fmt.Sprintf("%s %s %d", lhs, ep.Op, ep.I64)
	}
}

// exprString renders a projection expression against the input schema.
func exprString(e expr.Node, sch vector.Schema) string {
	switch n := e.(type) {
	case *expr.Col:
		return sch[n.Idx].Name
	case *expr.ConstI64:
		return strconv.FormatInt(n.V, 10)
	case *expr.ConstI32:
		return strconv.Itoa(int(n.V))
	case *expr.ConstF64:
		return strconv.FormatFloat(n.V, 'g', -1, 64)
	case *expr.BinOp:
		return "(" + exprString(n.L, sch) + " " + n.Op + " " + exprString(n.R, sch) + ")"
	case *expr.Widen:
		return "i64(" + exprString(n.Child, sch) + ")"
	case *expr.ToF64:
		return "f64(" + exprString(n.Child, sch) + ")"
	case *expr.MapI64:
		return "mapi64(" + exprString(n.Child, sch) + ")"
	case *expr.Substr:
		return fmt.Sprintf("substr(%s, %d, %d)", exprString(n.Child, sch), n.From, n.Len)
	case *expr.CaseEqStr:
		return fmt.Sprintf("case(%s == %q ? %d : %d)", exprString(n.Col, sch), n.Value, n.Then, n.Else)
	case *expr.CaseInStr:
		return fmt.Sprintf("case(%s in (%s) ? %d : %d)", exprString(n.Col, sch),
			strings.Join(n.Values, ", "), n.Then, n.Else)
	case *expr.CaseLikeStr:
		return fmt.Sprintf("case(like(%s) ? %d : %d)", exprString(n.Col, sch), n.Then, n.Else)
	default:
		return "expr"
	}
}
