package plan

import (
	"fmt"
	"sync"
	"testing"

	"microadapt/internal/engine"
	"microadapt/internal/vector"
)

// fragTable builds an n-row table with I32/I64/F64/Str columns so every
// merge path (narrow ints, floats, strings) is exercised.
func fragTable(n int) *engine.Table {
	k := make([]int32, n)
	v := make([]int64, n)
	f := make([]float64, n)
	tag := make([]string, n)
	names := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		k[i] = int32(i)
		v[i] = int64((i*7)%23 - 11)
		f[i] = float64(i%13)*0.75 - 4
		tag[i] = names[i%3]
	}
	return engine.NewTable("t", vector.Schema{
		{Name: "k", Type: vector.I32},
		{Name: "v", Type: vector.I64},
		{Name: "f", Type: vector.F64},
		{Name: "tag", Type: vector.Str},
	}, []*vector.Vector{vector.FromI32(k), vector.FromI64(v), vector.FromF64(f), vector.FromStr(tag)})
}

// runDistributed is an in-process mini-coordinator: it derives the plan's
// fragment sites, runs each fragment over every contiguous row-range
// slice of its base table (through the JSON wire form, as a shard
// would), merges the partials, presets them, and runs the residual.
func runDistributed(t *testing.T, b *Builder, shards int, base *engine.Table) *engine.Table {
	t.Helper()
	sites := FragmentSites(b)
	if len(sites) == 0 {
		t.Fatal("no fragment sites derived")
	}
	ex := b.Bind(testSession(1))
	for _, site := range sites {
		wire, err := MarshalPlan(site.Fragment)
		if err != nil {
			t.Fatalf("marshal fragment: %v", err)
		}
		parts := make([]*engine.Table, shards)
		for i := 0; i < shards; i++ {
			lo, hi := base.Rows()*i/shards, base.Rows()*(i+1)/shards
			slice := base.Slice(lo, hi)
			fb, err := UnmarshalPlan(wire, func(name string) (*engine.Table, bool) {
				if name != base.Name {
					return nil, false
				}
				return slice, true
			})
			if err != nil {
				t.Fatalf("unmarshal fragment on shard %d: %v", i, err)
			}
			parts[i], err = fb.Bind(testSession(1)).Run(fb.MainRoot())
			if err != nil {
				t.Fatalf("shard %d fragment: %v", i, err)
			}
		}
		m, err := site.MergePartials(parts)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		if err := ex.Preset(site.Node, m); err != nil {
			t.Fatalf("preset: %v", err)
		}
	}
	tab, err := ex.Run(b.MainRoot())
	if err != nil {
		t.Fatalf("residual run: %v", err)
	}
	return tab
}

func mustRun(t *testing.T, b *Builder) *engine.Table {
	t.Helper()
	tab, err := b.Bind(testSession(1)).Run(b.MainRoot())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func requireIdentical(t *testing.T, got, want *engine.Table, label string) {
	t.Helper()
	g, w := engine.TableString(got, 0), engine.TableString(want, 0)
	if g != w || got.Rows() != want.Rows() {
		t.Errorf("%s: distributed result differs\n got (%d rows):\n%s\nwant (%d rows):\n%s",
			label, got.Rows(), g, want.Rows(), w)
	}
}

// TestPartialAggMergeIdentity: every decomposable aggregate — count,
// int sum, int avg (split into sum+count), min/max, grouped first — merges
// bit-identically across shard counts, including splits that leave some
// shards empty.
func TestPartialAggMergeIdentity(t *testing.T) {
	cases := []struct {
		name string
		rows int
		plan func(tab *engine.Table) *Builder
	}{
		{"grouped-all-fns", 97, func(tab *engine.Table) *Builder {
			b := New("G")
			n := b.Scan(tab, "k", "v", "f", "tag").
				Select(CmpVal(0, ">", 3)).
				Agg([]int{3},
					engine.Agg(engine.AggCount, -1, "n"),
					engine.Agg(engine.AggSum, 1, "sv"),
					engine.Agg(engine.AggAvg, 1, "av"),
					engine.Agg(engine.AggMin, 1, "mn"),
					engine.Agg(engine.AggMax, 2, "mx"),
					engine.Agg(engine.AggFirst, 0, "fk"))
			b.Root(n)
			return b
		}},
		{"global-int-aggs", 64, func(tab *engine.Table) *Builder {
			b := New("GL")
			n := b.Scan(tab, "k", "v").
				Agg(nil,
					engine.Agg(engine.AggCount, -1, "n"),
					engine.Agg(engine.AggSum, 1, "sv"),
					engine.Agg(engine.AggAvg, 1, "av"),
					engine.Agg(engine.AggMin, 1, "mn"),
					engine.Agg(engine.AggMax, 1, "mx"))
			b.Root(n)
			return b
		}},
		{"avg-zero-count-groups", 9, func(tab *engine.Table) *Builder {
			b := New("Z")
			n := b.Scan(tab, "v", "tag").
				Select(CmpVal(0, ">", 1000)). // selects nothing: empty input
				Agg(nil,
					engine.Agg(engine.AggCount, -1, "n"),
					engine.Agg(engine.AggAvg, 0, "av"))
			b.Root(n)
			return b
		}},
		{"count-distinct-two-level", 81, func(tab *engine.Table) *Builder {
			// Distributed count-distinct: the inner group-by (tag, k) is
			// the pushed-down partial; the outer count per tag runs on the
			// coordinator over the merged distinct pairs.
			b := New("CD")
			inner := b.Scan(tab, "tag", "k").Agg([]int{0, 1},
				engine.Agg(engine.AggCount, -1, "dup"))
			outer := inner.Agg([]int{0}, engine.Agg(engine.AggCount, -1, "distinct_k"))
			b.Root(outer)
			return b
		}},
	}
	for _, tc := range cases {
		for _, shards := range []int{1, 2, 3, 5, 16} {
			t.Run(fmt.Sprintf("%s/N=%d", tc.name, shards), func(t *testing.T) {
				tab := fragTable(tc.rows)
				want := mustRun(t, tc.plan(tab))
				got := runDistributed(t, tc.plan(tab), shards, tab)
				requireIdentical(t, got, want, tc.name)
			})
		}
	}
}

// TestConcatMergeIdentity: plain select/project chains merge by ordered
// concatenation and reproduce global row order.
func TestConcatMergeIdentity(t *testing.T) {
	mkPlan := func(tab *engine.Table) *Builder {
		b := New("C")
		n := b.Scan(tab, "k", "v", "f", "tag").Select(CmpVal(1, ">", 0))
		b.Root(n)
		return b
	}
	tab := fragTable(103)
	want := mustRun(t, mkPlan(tab))
	for _, shards := range []int{1, 2, 4, 7} {
		got := runDistributed(t, mkPlan(tab), shards, tab)
		requireIdentical(t, got, want, fmt.Sprintf("concat N=%d", shards))
	}
}

// TestAggPushdownGates: aggregates whose partials do not merge exactly
// must stay on the coordinator (site merges by concat, not partial agg).
func TestAggPushdownGates(t *testing.T) {
	tab := fragTable(30)
	cases := []struct {
		name string
		aggs []engine.AggSpec
		grp  []int
		want MergeKind
	}{
		{"float-sum-held-back", []engine.AggSpec{engine.Agg(engine.AggSum, 2, "sf")}, []int{3}, MergeConcat},
		{"float-avg-held-back", []engine.AggSpec{engine.Agg(engine.AggAvg, 2, "af")}, []int{3}, MergeConcat},
		{"global-float-min-held-back", []engine.AggSpec{engine.Agg(engine.AggMin, 2, "mf")}, nil, MergeConcat},
		{"grouped-float-min-pushed", []engine.AggSpec{engine.Agg(engine.AggMin, 2, "mf")}, []int{3}, MergePartialAgg},
		{"global-first-held-back", []engine.AggSpec{engine.Agg(engine.AggFirst, 0, "fk")}, nil, MergeConcat},
		{"int-sum-pushed", []engine.AggSpec{engine.Agg(engine.AggSum, 1, "sv")}, nil, MergePartialAgg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New("G8")
			n := b.Scan(tab, "k", "v", "f", "tag").Agg(tc.grp, tc.aggs...)
			b.Root(n)
			sites := FragmentSites(b)
			if len(sites) != 1 {
				t.Fatalf("%d sites, want 1", len(sites))
			}
			if sites[0].Merge() != tc.want {
				t.Errorf("merge kind %v, want %v", sites[0].Merge(), tc.want)
			}
			// Whatever the gate decided, the distributed result must match.
			mk := func(tab *engine.Table) *Builder {
				b := New("G8")
				n := b.Scan(tab, "k", "v", "f", "tag").Agg(tc.grp, tc.aggs...)
				b.Root(n)
				return b
			}
			want := mustRun(t, mk(tab))
			got := runDistributed(t, mk(tab), 3, tab)
			requireIdentical(t, got, want, tc.name)
		})
	}
}

// TestFragmentLabelsRoundTrip: fragment plans carry the original plan's
// node labels through the JSON wire form, so shard-side primitive
// instances key into the FlavorCache under single-process plan positions.
func TestFragmentLabelsRoundTrip(t *testing.T) {
	tab := fragTable(20)
	b := New("Q1")
	n := b.Scan(tab, "k", "v", "tag").
		Select(CmpVal(0, "<", 15)).
		Agg([]int{2}, engine.Agg(engine.AggSum, 1, "sv"))
	b.Root(n)
	sites := FragmentSites(b)
	if len(sites) != 1 {
		t.Fatalf("%d sites, want 1", len(sites))
	}
	wire, err := MarshalPlan(sites[0].Fragment)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := UnmarshalPlan(wire, func(string) (*engine.Table, bool) { return tab, true })
	if err != nil {
		t.Fatal(err)
	}
	orig := sites[0].Fragment.Nodes()
	decoded := fb.Nodes()
	if len(orig) != len(decoded) {
		t.Fatalf("node count changed over the wire: %d vs %d", len(orig), len(decoded))
	}
	for i := range orig {
		if orig[i].Label() != decoded[i].Label() {
			t.Errorf("node %d label %q decoded as %q", i, orig[i].Label(), decoded[i].Label())
		}
	}
	// And the fragment labels are the original plan's labels, not fresh
	// fragment-local ones.
	if got, want := orig[len(orig)-1].Label(), n.Label(); got != want {
		t.Errorf("fragment agg label %q, want original %q", got, want)
	}
}

// TestPresetValidation: preset rejects foreign nodes and wrong schemas.
func TestPresetValidation(t *testing.T) {
	tab := fragTable(10)
	b := New("P")
	n := b.Scan(tab, "k", "v")
	b.Root(n)
	ex := b.Bind(testSession(1))

	other := New("O")
	on := other.Scan(tab, "k")
	other.Root(on)
	if err := ex.Preset(on, tab); err == nil {
		t.Error("preset of a foreign plan's node did not error")
	}
	if err := ex.Preset(n, fragTable(5)); err == nil {
		t.Error("preset with mismatched schema did not error")
	}
	good := engine.NewTable("p", n.Schema(), []*vector.Vector{
		vector.FromI32([]int32{7}), vector.FromI64([]int64{9}),
	})
	if err := ex.Preset(n, good); err != nil {
		t.Fatalf("valid preset rejected: %v", err)
	}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 1 || out.Cols[0].GetI64(0) != 7 {
		t.Errorf("run did not use preset table: %d rows", out.Rows())
	}
}

// chunked splits a partial table into row chunks of at most sz rows.
func chunked(p *engine.Table, sz int) []*engine.Table {
	var out []*engine.Table
	for lo := 0; lo < p.Rows(); lo += sz {
		hi := lo + sz
		if hi > p.Rows() {
			hi = p.Rows()
		}
		out = append(out, p.Slice(lo, hi))
	}
	if len(out) == 0 {
		out = append(out, p) // keep the zero-row partial visible
	}
	return out
}

// sitePartials runs a plan's single fragment site over every contiguous
// row-range of the base table and returns the site with its per-shard
// partials.
func sitePartials(t *testing.T, b *Builder, shards int, base *engine.Table) (*FragmentSite, []*engine.Table) {
	t.Helper()
	sites := FragmentSites(b)
	if len(sites) != 1 {
		t.Fatalf("%d sites, want 1", len(sites))
	}
	site := sites[0]
	parts := make([]*engine.Table, shards)
	for i := 0; i < shards; i++ {
		lo, hi := base.Rows()*i/shards, base.Rows()*(i+1)/shards
		slice := base.Slice(lo, hi)
		fb, err := UnmarshalPlan(mustMarshal(t, site.Fragment), func(name string) (*engine.Table, bool) {
			return slice, name == base.Name
		})
		if err != nil {
			t.Fatal(err)
		}
		parts[i], err = fb.Bind(testSession(1)).Run(fb.MainRoot())
		if err != nil {
			t.Fatal(err)
		}
	}
	return site, parts
}

func mustMarshal(t *testing.T, b *Builder) []byte {
	t.Helper()
	wire, err := MarshalPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func accPlans() map[string]func(tab *engine.Table) *Builder {
	return map[string]func(tab *engine.Table) *Builder{
		"concat": func(tab *engine.Table) *Builder {
			b := New("C")
			b.Root(b.Scan(tab, "k", "v", "f", "tag").Select(CmpVal(1, ">", 0)))
			return b
		},
		"partial-agg": func(tab *engine.Table) *Builder {
			b := New("A")
			b.Root(b.Scan(tab, "k", "v", "f", "tag").Agg([]int{3},
				engine.Agg(engine.AggCount, -1, "n"),
				engine.Agg(engine.AggSum, 1, "sv"),
				engine.Agg(engine.AggAvg, 1, "av"),
				engine.Agg(engine.AggMin, 1, "mn"),
				engine.Agg(engine.AggMax, 1, "mx"),
				engine.Agg(engine.AggFirst, 0, "fk")))
			return b
		},
	}
}

// TestAccumulatorChunkedMatchesWhole: feeding row chunks incrementally —
// shards interleaved, finish order reversed — produces the exact table the
// whole-partial MergePartials path produces, for both merge kinds.
func TestAccumulatorChunkedMatchesWhole(t *testing.T) {
	tab := fragTable(97)
	for name, mk := range accPlans() {
		t.Run(name, func(t *testing.T) {
			site, parts := sitePartials(t, mk(tab), 4, tab)
			want, err := site.MergePartials(parts)
			if err != nil {
				t.Fatal(err)
			}
			acc := site.NewAccumulator(len(parts))
			chunks := make([][]*engine.Table, len(parts))
			for i, p := range parts {
				chunks[i] = chunked(p, 5)
			}
			// Round-robin chunk delivery across shards, then finish shards
			// in reverse order: the frontier must still fold in shard order.
			for ci := 0; ; ci++ {
				any := false
				for si := range chunks {
					if ci < len(chunks[si]) {
						any = true
						if err := acc.AddChunk(si, chunks[si][ci]); err != nil {
							t.Fatal(err)
						}
					}
				}
				if !any {
					break
				}
			}
			if _, err := acc.Result(); err == nil {
				t.Fatal("Result before FinishShard did not error")
			}
			for si := len(parts) - 1; si >= 0; si-- {
				if err := acc.FinishShard(si); err != nil {
					t.Fatal(err)
				}
			}
			got, err := acc.Result()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, name)
		})
	}
}

// TestAccumulatorResetShard: a shard that fails mid-stream resets cleanly
// — no partial rows leak — and a full re-delivery merges identically.
// Finished shards refuse resets and further chunks.
func TestAccumulatorResetShard(t *testing.T) {
	tab := fragTable(61)
	for name, mk := range accPlans() {
		t.Run(name, func(t *testing.T) {
			site, parts := sitePartials(t, mk(tab), 3, tab)
			want, err := site.MergePartials(parts)
			if err != nil {
				t.Fatal(err)
			}
			acc := site.NewAccumulator(len(parts))
			// Shard 1 delivers half its rows twice, resetting in between —
			// as a failed stream retried over the buffered path would.
			half := parts[1].Slice(0, parts[1].Rows()/2)
			for round := 0; round < 2; round++ {
				if err := acc.AddChunk(1, half); err != nil {
					t.Fatal(err)
				}
				if err := acc.ResetShard(1); err != nil {
					t.Fatal(err)
				}
			}
			for si, p := range parts {
				if err := acc.AddChunk(si, p); err != nil {
					t.Fatal(err)
				}
				if err := acc.FinishShard(si); err != nil {
					t.Fatal(err)
				}
			}
			got, err := acc.Result()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, name)

			if err := acc.ResetShard(1); err == nil {
				t.Error("ResetShard after FinishShard did not error")
			}
			if err := acc.AddChunk(1, parts[1]); err == nil {
				t.Error("AddChunk after FinishShard did not error")
			}
			if err := acc.FinishShard(1); err == nil {
				t.Error("double FinishShard did not error")
			}
		})
	}
}

// TestAccumulatorConcurrent: one goroutine per shard streaming chunks and
// finishing, merged result identical to the sequential whole-table path.
// This is the race coverage for the coordinator's concurrent-site merge.
func TestAccumulatorConcurrent(t *testing.T) {
	tab := fragTable(128)
	for name, mk := range accPlans() {
		t.Run(name, func(t *testing.T) {
			site, parts := sitePartials(t, mk(tab), 8, tab)
			want, err := site.MergePartials(parts)
			if err != nil {
				t.Fatal(err)
			}
			acc := site.NewAccumulator(len(parts))
			var wg sync.WaitGroup
			errs := make([]error, len(parts))
			for si, p := range parts {
				wg.Add(1)
				go func(si int, p *engine.Table) {
					defer wg.Done()
					for _, c := range chunked(p, 3) {
						if err := acc.AddChunk(si, c); err != nil {
							errs[si] = err
							return
						}
					}
					errs[si] = acc.FinishShard(si)
				}(si, p)
			}
			wg.Wait()
			for si, err := range errs {
				if err != nil {
					t.Fatalf("shard %d: %v", si, err)
				}
			}
			got, err := acc.Result()
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, name)
		})
	}
}

// TestAccumulatorRejectsBadChunks: schema mismatches and out-of-range
// shard ids fail loudly instead of corrupting the merge.
func TestAccumulatorRejectsBadChunks(t *testing.T) {
	tab := fragTable(20)
	mk := accPlans()["concat"]
	site, parts := sitePartials(t, mk(tab), 2, tab)
	acc := site.NewAccumulator(len(parts))
	if err := acc.AddChunk(0, fragTable(3).Project("k", "v")); err == nil {
		t.Error("schema-mismatched chunk accepted")
	}
	if err := acc.AddChunk(5, parts[0]); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := acc.FinishShard(-1); err == nil {
		t.Error("out-of-range FinishShard accepted")
	}
}
