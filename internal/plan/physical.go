// Physical planning: lowering the logical DAG onto engine operators.
package plan

import (
	"fmt"

	"microadapt/internal/core"
	"microadapt/internal/engine"
	"microadapt/internal/vector"
)

// Exec is a plan bound to a session: the physical planner plus the
// execution state of one run — materialized shared subtrees and resolved
// scalars. Bind a fresh Exec per execution; an Exec is single-threaded
// like the session it wraps (parallelism comes from the fragment sessions
// the lowered Parallel/Exchange pairs spawn internally).
type Exec struct {
	sess *core.Session
	b    *Builder
	refs []int
	mat  map[int]*engine.Table
}

// Bind prepares the plan for execution on s.
func (b *Builder) Bind(s *core.Session) *Exec {
	return &Exec{sess: s, b: b, refs: b.refCounts(), mat: make(map[int]*engine.Table)}
}

// Preset installs t as node n's materialized result before execution, the
// hook distributed execution hangs off: the coordinator presets each
// fragment site with the merged per-shard partials, then runs the original
// plan — every consumer of n (parents, roots, scalar references, chain
// lowering) reads the preset table instead of recomputing the subtree.
func (e *Exec) Preset(n *Node, t *engine.Table) error {
	if n.b != e.b {
		return fmt.Errorf("plan: preset node %s belongs to a different plan", n.label)
	}
	if len(t.Sch) != len(n.sch) {
		return fmt.Errorf("plan: preset %s: table has %d columns, node wants %d", n.label, len(t.Sch), len(n.sch))
	}
	for i, c := range n.sch {
		if t.Sch[i] != c {
			return fmt.Errorf("plan: preset %s: column %d is %s %s, want %s %s",
				n.label, i, t.Sch[i].Name, t.Sch[i].Type, c.Name, c.Type)
		}
	}
	e.mat[n.id] = t
	return nil
}

// Run materializes node n's result table, executing (and memoizing) every
// upstream shared subtree and scalar on the way. Running several roots of
// one plan reuses all shared work.
func (e *Exec) Run(n *Node) (*engine.Table, error) {
	if t, ok := e.mat[n.id]; ok {
		return t, nil
	}
	op, err := e.pipeline(n)
	if err != nil {
		return nil, err
	}
	t, err := engine.Materialize(op)
	if err != nil {
		return nil, fmt.Errorf("plan: %s: %w", n.label, err)
	}
	t.Name = n.label
	e.mat[n.id] = t
	return t, nil
}

// ScalarI64 materializes n and returns row 0 of the named column widened
// to int64.
func (e *Exec) ScalarI64(n *Node, col string) (int64, error) {
	t, err := e.Run(n)
	if err != nil {
		return 0, err
	}
	if t.Rows() == 0 {
		return 0, fmt.Errorf("plan: scalar %s.%s over empty result", n.label, col)
	}
	return t.Col(col).GetI64(0), nil
}

// ScalarF64 materializes n and returns row 0 of the named column as
// float64.
func (e *Exec) ScalarF64(n *Node, col string) (float64, error) {
	t, err := e.Run(n)
	if err != nil {
		return 0, err
	}
	if t.Rows() == 0 {
		return 0, fmt.Errorf("plan: scalar %s.%s over empty result", n.label, col)
	}
	return t.Col(col).GetF64(0), nil
}

// lower produces the operator a single consumer pulls n's stream from:
// a fresh scan for stored tables and already-materialized nodes, a full
// materialization for shared subtrees, and an inline pipeline otherwise.
func (e *Exec) lower(n *Node) (engine.Operator, error) {
	if t, ok := e.mat[n.id]; ok {
		return engine.NewScan(e.sess, t), nil
	}
	if n.kind == KindScan {
		// Scans are stateless per consumer: shared scan nodes instantiate a
		// fresh cursor per parent instead of materializing.
		return e.scanOp(n), nil
	}
	if e.refs[n.id] > 1 {
		t, err := e.Run(n)
		if err != nil {
			return nil, err
		}
		return engine.NewScan(e.sess, t), nil
	}
	return e.pipeline(n)
}

// scanOp lowers a scan node: tables resident in compressed form scan
// through the adaptive decompression primitives (labelled with the scan
// node's plan position), flat tables through the zero-copy cursor.
func (e *Exec) scanOp(n *Node) engine.Operator {
	if n.table.Enc != nil {
		return engine.NewEncodedScan(e.sess, n.table, n.label, n.cols...)
	}
	return engine.NewScan(e.sess, n.table, n.cols...)
}

// chain is a maximal scan→select→project prefix: stack holds the chain's
// select/project nodes top-down; the base is either a stored-table scan
// node or a shared node the planner materializes first.
type chain struct {
	stack []*Node
	scan  *Node // base when the chain bottoms out at a stored table
	base  *Node // base when the chain bottoms out at a shared subtree
}

// chainOf derives, from plan shape alone, whether n tops a morsel-
// partitionable pipeline: an unbroken run of single-consumer Select /
// Project nodes over a row range that can be scanned per morsel. This is
// the analysis that replaces the hand-maintained list of partitionable
// queries. A node with a preset/materialized table in mat terminates the
// chain as its base — walking past it would re-execute work the preset
// replaced (on a distributed coordinator, against empty local tables). The
// static explain renderer passes mat=nil.
func chainOf(n *Node, refs []int, mat map[int]*engine.Table) *chain {
	c := &chain{}
	cur := n
	for cur.kind == KindSelect || cur.kind == KindProject {
		c.stack = append(c.stack, cur)
		child := cur.in[0]
		if _, ok := mat[child.id]; ok {
			c.base = child
			return c
		}
		switch {
		case child.kind == KindScan:
			c.scan = child
			return c
		case refs[child.id] > 1:
			c.base = child
			return c
		case child.kind == KindSelect || child.kind == KindProject:
			cur = child
		default:
			return nil // pipeline is fed by a blocking operator: not partitionable
		}
	}
	return nil
}

// pushdownSelect returns the chain node whose conjuncts are eligible for
// encoded-scan pushdown — the bottom-of-chain Select sitting directly on a
// compressed-resident stored-table scan — or nil. The planner and the
// explain renderer both route through this (and through
// engine.PushdownSplit for the conjunct split), so the explain annotation
// cannot drift from what executes.
func (c *chain) pushdownSelect() *Node {
	if c.scan == nil || c.scan.table.Enc == nil || len(c.stack) == 0 {
		return nil
	}
	if nd := c.stack[len(c.stack)-1]; nd.kind == KindSelect {
		return nd
	}
	return nil
}

// pipeline lowers n inline. When n tops a partitionable chain the whole
// chain lowers through engine.ParallelPipeline — one FragmentBuilder
// expresses both the serial shape (P=1, coordinator session, full range)
// and the partitioned shape (P fragments on fragment sessions, merged by
// an order-preserving exchange); otherwise n lowers to a single operator
// over its lowered children.
func (e *Exec) pipeline(n *Node) (engine.Operator, error) {
	c := chainOf(n, e.refs, e.mat)
	if c == nil {
		return e.build(n)
	}
	var (
		table *engine.Table
		cols  []string
	)
	if c.scan != nil {
		table = c.scan.table
		cols = c.scan.cols
	} else {
		t, err := e.Run(c.base)
		if err != nil {
			return nil, err
		}
		table = t
	}
	// Resolve scalar predicates before fragment construction: fragments
	// must not re-run scalar subplans, and resolution happens exactly once
	// per chain node regardless of the fan-out.
	resolved := make([][]engine.Pred, len(c.stack))
	for i, nd := range c.stack {
		if nd.kind != KindSelect {
			continue
		}
		preds, err := e.enginePreds(nd)
		if err != nil {
			return nil, err
		}
		resolved[i] = preds
	}
	// Over a compressed-resident table, the Select directly above the scan
	// pushes its leading constant-comparison conjuncts into the encoded
	// scan, where they run as selenc instances (decode vs operate-on-
	// compressed flavors) and hand the decompression of the output columns
	// a selection vector to exploit. Conjunct order is preserved, so the
	// produced selection — and every result bit — matches the flat plan.
	encoded := c.scan != nil && table.Enc != nil
	var pushPreds []engine.Pred
	pushLabel := ""
	if nd := c.pushdownSelect(); nd != nil {
		bottom := len(c.stack) - 1
		push, rest := engine.PushdownSplit(table, cols, resolved[bottom])
		pushPreds, resolved[bottom] = push, rest
		pushLabel = nd.label
	}
	// The fan-out decision is keyed by the pipeline's plan position: the
	// topmost node of the chain (the scan itself for bare-scan chains).
	pipeLabel := ""
	switch {
	case len(c.stack) > 0:
		pipeLabel = c.stack[0].label
	case c.scan != nil:
		pipeLabel = c.scan.label
	default:
		pipeLabel = c.base.label
	}
	return engine.ParallelPipeline(e.sess, pipeLabel, table.Rows(), func(fs *core.Session, m engine.Morsel) (engine.Operator, error) {
		var op engine.Operator
		if encoded {
			es := engine.NewEncodedRangeScan(fs, table, c.scan.label, m.Lo, m.Hi, cols...)
			if len(pushPreds) > 0 {
				es.Pushdown(pushLabel, pushPreds...)
			}
			op = es
		} else {
			op = engine.NewRangeScan(fs, table, m.Lo, m.Hi, cols...)
		}
		for i := len(c.stack) - 1; i >= 0; i-- {
			nd := c.stack[i]
			switch nd.kind {
			case KindSelect:
				op = engine.NewSelect(fs, op, nd.label, resolved[i]...)
			case KindProject:
				op = engine.NewProject(fs, op, nd.label, nd.exprs...)
			}
		}
		return op, nil
	})
}

// build constructs the engine operator of one non-chain node over its
// lowered children.
func (e *Exec) build(n *Node) (engine.Operator, error) {
	switch n.kind {
	case KindScan:
		return e.scanOp(n), nil
	case KindSelect:
		child, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		preds, err := e.enginePreds(n)
		if err != nil {
			return nil, err
		}
		return engine.NewSelect(e.sess, child, n.label, preds...), nil
	case KindProject:
		child, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		return engine.NewProject(e.sess, child, n.label, n.exprs...), nil
	case KindAgg:
		child, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		return engine.NewHashAgg(e.sess, child, n.label, n.groupBy, n.aggs...), nil
	case KindHashJoin:
		build, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		probe, err := e.lower(n.in[1])
		if err != nil {
			return nil, err
		}
		// The plan no longer bakes in the join algorithm: the engine's Join
		// resolves its strategy (hash / merge / bloomhash) on the session's
		// decision registry at Open. bloomBits survives only as the
		// bloomhash arm's filter-density hint.
		opts := []engine.JoinOption{engine.WithKind(n.joinKind)}
		if n.bloomBits > 0 {
			opts = append(opts, engine.WithBloom(n.bloomBits))
		}
		return engine.NewJoin(e.sess, build, probe, n.label, n.buildKey, n.probeKey, n.payload, opts...), nil
	case KindMergeJoin:
		left, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		right, err := e.lower(n.in[1])
		if err != nil {
			return nil, err
		}
		return engine.NewMergeJoin(e.sess, left, right, n.label, n.leftKey, n.rightKey, n.leftOut, n.rightOut), nil
	case KindSort:
		child, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		return engine.NewSort(e.sess, child, n.keys...), nil
	case KindTopN:
		child, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		return engine.NewTopN(e.sess, child, n.limit, n.keys...), nil
	case KindLimit:
		child, err := e.lower(n.in[0])
		if err != nil {
			return nil, err
		}
		return engine.NewLimit(e.sess, child, n.limit), nil
	default:
		return nil, fmt.Errorf("plan: unknown node kind %d", n.kind)
	}
}

// enginePreds converts a select node's predicates to engine predicates,
// resolving scalar references by materializing their source subplans.
func (e *Exec) enginePreds(n *Node) ([]engine.Pred, error) {
	out := make([]engine.Pred, len(n.preds))
	inSch := n.in[0].sch
	for i, p := range n.preds {
		ep := p.pred
		if p.scalar != nil {
			if err := e.resolveScalar(*p.scalar, inSch[ep.Col].Type, &ep); err != nil {
				return nil, err
			}
		}
		out[i] = ep
	}
	return out, nil
}

// resolveScalar reads the scalar's value and stores it in ep as the
// constant matching the predicate's left-column type family.
func (e *Exec) resolveScalar(s Scalar, target vector.Type, ep *engine.Pred) error {
	t, err := e.Run(s.From)
	if err != nil {
		return err
	}
	if t.Rows() == 0 {
		return fmt.Errorf("plan: scalar %s over empty result", s.String())
	}
	src := t.Col(s.Col)
	if target == vector.F64 {
		v := src.GetF64(0)
		if s.Div > 1 {
			v /= float64(s.Div)
		}
		ep.F64 = v
		return nil
	}
	var v int64
	if src.Type() == vector.F64 {
		v = int64(src.GetF64(0))
	} else {
		v = src.GetI64(0)
	}
	if s.Div > 1 {
		v /= s.Div
	}
	ep.I64 = v
	return nil
}
