// Package plan is the declarative plan layer over the vectorized executor:
// a logical plan DAG (scan, select, project, aggregate, hash/merge join,
// sort, top-n, limit) with a fluent builder API, a physical planner that
// lowers plans onto engine operators against a core.Session, and an
// explain renderer for both levels.
//
// The planner — not the query author — decides everything the paper calls
// "plan position" bookkeeping:
//
//   - instance labels are derived from plan structure ("Q1/sel0",
//     "Q6/proj0"), so fragment bandits and the cross-session FlavorCache
//     key off the position of a primitive in the plan, never off a
//     hand-typed string;
//   - morsel partitionability is derived from plan shape: every maximal
//     scan→select→project chain is lowered through engine.ParallelPipeline
//     and fans into P order-preserving fragments when the session's
//     pipeline parallelism and the scanned row count allow it;
//   - shared subtrees (a node consumed by more than one parent) are
//     materialized exactly once and scanned by every consumer.
//
// Plans are built once per query shape and bound to a session per
// execution:
//
//	b := plan.New("Q6")
//	li := b.Scan(db.Lineitem, "l_shipdate", "l_discount", "l_quantity", "l_extendedprice")
//	sel := li.Select(plan.CmpVal(0, ">=", lo), plan.CmpVal(0, "<", hi))
//	b.Root(sel.Project(...).Agg(nil, engine.Agg(engine.AggSum, 0, "revenue")))
//	tab, err := b.Bind(sess).Run(b.MainRoot())
package plan

import (
	"fmt"
	"strconv"

	"microadapt/internal/engine"
	"microadapt/internal/expr"
	"microadapt/internal/vector"
)

// Kind enumerates the logical operator kinds.
type Kind uint8

// Logical node kinds.
const (
	KindScan Kind = iota
	KindSelect
	KindProject
	KindAgg
	KindHashJoin
	KindMergeJoin
	KindSort
	KindTopN
	KindLimit
)

// tag returns the short label tag of a kind ("sel", "hj", ...).
func (k Kind) tag() string {
	switch k {
	case KindScan:
		return "scan"
	case KindSelect:
		return "sel"
	case KindProject:
		return "proj"
	case KindAgg:
		return "agg"
	case KindHashJoin:
		return "hj"
	case KindMergeJoin:
		return "mj"
	case KindSort:
		return "sort"
	case KindTopN:
		return "topn"
	case KindLimit:
		return "limit"
	default:
		return "op"
	}
}

// String returns the display name of a kind.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "Scan"
	case KindSelect:
		return "Select"
	case KindProject:
		return "Project"
	case KindAgg:
		return "HashAgg"
	case KindHashJoin:
		return "HashJoin"
	case KindMergeJoin:
		return "MergeJoin"
	case KindSort:
		return "Sort"
	case KindTopN:
		return "TopN"
	case KindLimit:
		return "Limit"
	default:
		return "Op"
	}
}

// Scalar defers a constant to execution time: the value is row 0 of column
// Col of the (materialized) result of From, optionally integer-divided by
// Div — the plan-level form of a scalar subquery (Q11's HAVING threshold,
// Q15's max revenue, Q22's average balance).
type Scalar struct {
	From *Node
	Col  string
	Div  int64 // > 1: integer-divide the value (float values divide too)
}

// ScalarOf references row 0 of column col of n's result.
func ScalarOf(n *Node, col string) Scalar { return Scalar{From: n, Col: col} }

// DivBy divides the scalar by d at resolution time.
func (s Scalar) DivBy(d int64) Scalar {
	s.Div = d
	return s
}

// String renders the scalar reference for explain output.
func (s Scalar) String() string {
	out := fmt.Sprintf("$(%s.%s)", s.From.label, s.Col)
	if s.Div > 1 {
		out += "/" + strconv.FormatInt(s.Div, 10)
	}
	return out
}

// Pred is one conjunct of a logical Select: an engine predicate whose
// constant may be deferred to a Scalar resolved at lowering time.
type Pred struct {
	pred   engine.Pred
	scalar *Scalar
}

// CmpVal builds a column-vs-constant comparison (int, float64 or string).
func CmpVal(col int, op string, value any) Pred {
	return Pred{pred: engine.CmpVal(col, op, value)}
}

// CmpCol builds a column-vs-column comparison.
func CmpCol(col int, op string, rhs int) Pred { return Pred{pred: engine.CmpCol(col, op, rhs)} }

// CmpScalar builds a column-vs-scalar comparison; the constant is read from
// the scalar's source node when the plan is lowered.
func CmpScalar(col int, op string, s Scalar) Pred {
	return Pred{pred: engine.Pred{Col: col, Op: op, RHSCol: -1}, scalar: &s}
}

// Like builds a LIKE predicate.
func Like(col int, pattern string) Pred { return Pred{pred: engine.Like(col, pattern)} }

// NotLike builds a NOT LIKE predicate.
func NotLike(col int, pattern string) Pred { return Pred{pred: engine.NotLike(col, pattern)} }

// InStr builds an IN-list predicate over a string column.
func InStr(col int, values ...string) Pred { return Pred{pred: engine.InStr(col, values...)} }

// InI32 builds an IN-list predicate over a sint column.
func InI32(col int, values ...int32) Pred { return Pred{pred: engine.InI32(col, values...)} }

// Node is one logical operator of a plan DAG. Nodes are created through
// the Builder and are immutable once built; a node consumed by several
// parents is a shared subtree the planner materializes once.
type Node struct {
	b     *Builder
	id    int // creation order within the builder
	kind  Kind
	label string // derived plan-position label, e.g. "Q1/sel0"
	in    []*Node
	sch   vector.Schema

	// scan
	table *engine.Table
	cols  []string

	// select
	preds []Pred

	// project
	exprs []engine.ProjExpr

	// aggregate
	groupBy []int
	aggs    []engine.AggSpec

	// hash join
	joinKind           engine.JoinKind
	buildKey, probeKey string
	payload            []string
	bloomBits          int

	// merge join
	leftKey, rightKey string
	leftOut, rightOut []string

	// sort / top-n / limit
	keys  []engine.SortKey
	limit int
}

// Builder accumulates the nodes of one query's plan DAG and derives their
// plan-position labels. One builder describes one query; it may carry
// several roots (Q19's three disjunct branches, Q13's distribution and
// zero-bucket outputs).
type Builder struct {
	name      string
	nodes     []*Node
	kindCount map[Kind]int
	roots     []Root
}

// Root is one named output of a plan.
type Root struct {
	Name string
	Node *Node
}

// New starts a plan builder; name prefixes every derived label.
func New(name string) *Builder {
	return &Builder{name: name, kindCount: make(map[Kind]int)}
}

// Name returns the plan name.
func (b *Builder) Name() string { return b.name }

// Nodes returns every node in creation order.
func (b *Builder) Nodes() []*Node { return b.nodes }

// Root registers n as a plan output (the first registered root is the main
// one), named "out" or "out<N>".
func (b *Builder) Root(n *Node) *Node {
	name := "out"
	if len(b.roots) > 0 {
		name = "out" + strconv.Itoa(len(b.roots))
	}
	return b.NamedRoot(name, n)
}

// NamedRoot registers n as the plan output called name.
func (b *Builder) NamedRoot(name string, n *Node) *Node {
	b.roots = append(b.roots, Root{Name: name, Node: n})
	return n
}

// Roots returns the registered outputs in registration order.
func (b *Builder) Roots() []Root { return b.roots }

// MainRoot returns the first registered output.
func (b *Builder) MainRoot() *Node {
	if len(b.roots) == 0 {
		panic("plan: " + b.name + " has no root")
	}
	return b.roots[0].Node
}

// newNode registers a node and derives its plan-position label from the
// builder name, the operator kind and the per-kind creation ordinal —
// "Q1/sel0", "Q1/proj0", "Q21/hj3". Two sessions building the same plan
// derive identical labels, which is what lets per-partition fragment
// bandits and the cross-session FlavorCache key off plan structure.
func (b *Builder) newNode(k Kind, in ...*Node) *Node {
	for _, c := range in {
		if c.b != b {
			panic("plan: node from a different builder")
		}
	}
	n := &Node{
		b:     b,
		id:    len(b.nodes),
		kind:  k,
		label: b.name + "/" + k.tag() + strconv.Itoa(b.kindCount[k]),
		in:    in,
	}
	b.kindCount[k]++
	b.nodes = append(b.nodes, n)
	return n
}

// Scan streams the named columns of a stored table (all columns when none
// are named).
func (b *Builder) Scan(t *engine.Table, cols ...string) *Node {
	n := b.newNode(KindScan)
	n.table = t
	n.cols = cols
	if len(cols) == 0 {
		n.sch = t.Sch
	} else {
		for _, name := range cols {
			n.sch = append(n.sch, t.Sch[t.Sch.MustIndexOf(name)])
		}
	}
	return n
}

// Select filters n through conjunctive predicates.
func (n *Node) Select(preds ...Pred) *Node {
	out := n.b.newNode(KindSelect, n)
	out.preds = preds
	out.sch = n.sch
	return out
}

// Project computes expressions as the new output columns.
func (n *Node) Project(exprs ...engine.ProjExpr) *Node {
	out := n.b.newNode(KindProject, n)
	out.exprs = exprs
	for _, e := range exprs {
		out.sch = append(out.sch, vector.Col{Name: e.Name, Type: e.Expr.Type(n.sch)})
	}
	return out
}

// Agg groups n on groupBy (nil for a global aggregate) computing aggs.
func (n *Node) Agg(groupBy []int, aggs ...engine.AggSpec) *Node {
	out := n.b.newNode(KindAgg, n)
	out.groupBy = groupBy
	out.aggs = aggs
	out.sch = engine.AggOutputSchema(n.sch, groupBy, aggs)
	return out
}

// Sort orders n by keys.
func (n *Node) Sort(keys ...engine.SortKey) *Node {
	out := n.b.newNode(KindSort, n)
	out.keys = keys
	out.sch = n.sch
	return out
}

// TopN orders n by keys and keeps the first nRows rows.
func (n *Node) TopN(nRows int, keys ...engine.SortKey) *Node {
	out := n.b.newNode(KindTopN, n)
	out.keys = keys
	out.limit = nRows
	out.sch = n.sch
	return out
}

// Limit truncates n to nRows live rows.
func (n *Node) Limit(nRows int) *Node {
	out := n.b.newNode(KindLimit, n)
	out.limit = nRows
	out.sch = n.sch
	return out
}

// JoinOption configures a hash join node.
type JoinOption func(*Node)

// WithBloom enables the bloom-filter pre-filter with bits per build key.
func WithBloom(bitsPerKey int) JoinOption {
	return func(n *Node) { n.bloomBits = bitsPerKey }
}

// HashJoin joins probe against the materialized build side on single
// integer keys; payload names build columns appended to the probe schema
// (inner joins only).
func (b *Builder) HashJoin(build, probe *Node, buildKey, probeKey string, payload []string, opts ...JoinOption) *Node {
	n := b.newNode(KindHashJoin, build, probe)
	n.joinKind = engine.InnerJoin
	n.buildKey, n.probeKey = buildKey, probeKey
	n.payload = payload
	for _, o := range opts {
		o(n)
	}
	// Resolve the keys now so a typo fails at plan-build time, not deep in
	// operator Open.
	build.sch.MustIndexOf(buildKey)
	probe.sch.MustIndexOf(probeKey)
	n.sch = append(n.sch, probe.sch...)
	if n.joinKind == engine.InnerJoin {
		for _, name := range payload {
			n.sch = append(n.sch, build.sch[build.sch.MustIndexOf(name)])
		}
	}
	return n
}

// SemiJoin keeps probe tuples with a build-side match.
func (b *Builder) SemiJoin(build, probe *Node, buildKey, probeKey string, opts ...JoinOption) *Node {
	return b.joinOfKind(engine.SemiJoin, build, probe, buildKey, probeKey, opts...)
}

// AntiJoin keeps probe tuples without a build-side match.
func (b *Builder) AntiJoin(build, probe *Node, buildKey, probeKey string, opts ...JoinOption) *Node {
	return b.joinOfKind(engine.AntiJoin, build, probe, buildKey, probeKey, opts...)
}

func (b *Builder) joinOfKind(k engine.JoinKind, build, probe *Node, buildKey, probeKey string, opts ...JoinOption) *Node {
	n := b.newNode(KindHashJoin, build, probe)
	n.joinKind = k
	n.buildKey, n.probeKey = buildKey, probeKey
	for _, o := range opts {
		o(n)
	}
	build.sch.MustIndexOf(buildKey)
	probe.sch.MustIndexOf(probeKey)
	n.sch = append(n.sch, probe.sch...)
	return n
}

// MergeJoin joins two inputs already sorted on their integer keys, emitting
// leftOut columns from left and rightOut columns from right.
func (b *Builder) MergeJoin(left, right *Node, leftKey, rightKey string, leftOut, rightOut []string) *Node {
	n := b.newNode(KindMergeJoin, left, right)
	n.leftKey, n.rightKey = leftKey, rightKey
	n.leftOut, n.rightOut = leftOut, rightOut
	left.sch.MustIndexOf(leftKey)
	right.sch.MustIndexOf(rightKey)
	for _, name := range leftOut {
		n.sch = append(n.sch, left.sch[left.sch.MustIndexOf(name)])
	}
	for _, name := range rightOut {
		n.sch = append(n.sch, right.sch[right.sch.MustIndexOf(name)])
	}
	return n
}

// Schema returns the node's output schema.
func (n *Node) Schema() vector.Schema { return n.sch }

// Label returns the derived plan-position label.
func (n *Node) Label() string { return n.label }

// Kind returns the node's operator kind.
func (n *Node) Kind() Kind { return n.kind }

// Inputs returns the node's children (build before probe, left before
// right).
func (n *Node) Inputs() []*Node { return n.in }

// Idx resolves a column name in the node's output schema; it panics on an
// unknown name, like every schema lookup at plan-build time.
func (n *Node) Idx(name string) int { return n.sch.MustIndexOf(name) }

// Col builds a column-reference expression by name.
func (n *Node) Col(name string) expr.Node { return &expr.Col{Idx: n.Idx(name)} }

// refCounts returns, per node id, how many consumers the final DAG has:
// plan children plus scalar references. The physical planner materializes
// any non-scan node with more than one consumer.
func (b *Builder) refCounts() []int {
	refs := make([]int, len(b.nodes))
	for _, n := range b.nodes {
		for _, c := range n.in {
			refs[c.id]++
		}
		for _, p := range n.preds {
			if p.scalar != nil {
				refs[p.scalar.From.id]++
			}
		}
	}
	return refs
}
