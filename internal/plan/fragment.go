// Fragment derivation for distributed execution: the coordinator-side
// analysis that splits a logical plan at its base-table scans into
// shippable per-shard fragments plus a merge step.
//
// A fragment site is one base-table scan together with the maximal prefix
// of the plan that can run on a shard holding only a row-range of that
// table: the scan's unbroken single-consumer select/project chain
// (scalar-predicate selects stay on the coordinator — their subplans may
// read other tables), optionally extended through a partial aggregate.
// Because shards own contiguous row ranges in table order, concatenating
// their partial outputs in shard order reproduces exactly the stream a
// single process would produce — streaming selects and projects preserve
// row order, and HashAgg assigns dense group ids in first-seen order, so
// even aggregate group order survives the split.
//
// Aggregate pushdown is exactness-gated: a fragment carries the Agg only
// when every aggregate merges bit-identically from per-shard partials —
// count, integer sum, min/max, integer avg (shipped as sum+count, finalized
// exactly like the engine), and grouped first. Float sums and avgs are not
// associative, so those chains ship only the select/project prefix and
// aggregate on the coordinator.
package plan

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"microadapt/internal/engine"
	"microadapt/internal/vector"
)

// MergeKind says how per-shard partial tables combine into the site node's
// result.
type MergeKind uint8

const (
	// MergeConcat concatenates the partials in shard order.
	MergeConcat MergeKind = iota
	// MergePartialAgg folds partial aggregates group-wise.
	MergePartialAgg
)

// aggMerge describes how one original aggregate folds across partials.
type aggMerge struct {
	fn     engine.AggFn // original aggregate function
	col    int          // partial column holding the partial aggregate
	cntCol int          // avg only: partial column holding the count; -1 otherwise
}

// FragmentSite is one distribution point of a plan: the original node whose
// result the merged partials stand in for (via Exec.Preset), and the
// shippable fragment plan each shard executes over its row range.
type FragmentSite struct {
	Node     *Node    // node of the original plan the merge result presets
	Fragment *Builder // per-shard partial plan (marshal with MarshalPlan)
	Table    string   // base table the fragment scans

	merge     MergeKind
	groupCols int
	aggs      []aggMerge
}

// Merge returns how this site's partials combine.
func (s *FragmentSite) Merge() MergeKind { return s.merge }

// hasScalarPred reports whether any conjunct of a select defers its
// constant to a scalar subplan (which a shard cannot resolve).
func hasScalarPred(n *Node) bool {
	for _, p := range n.preds {
		if p.scalar != nil {
			return true
		}
	}
	return false
}

// decomposableAggs reports whether every aggregate of an Agg node merges
// exactly from per-shard partials. The gates mirror the engine's
// accumulator semantics:
//
//   - float sums and avgs accumulate in float64, and float addition is not
//     associative — splitting them would break bit-identity;
//   - global (group-less) float min/max finalize an empty input to 0, not
//     ±Inf, so an empty shard's partial is not a neutral element;
//   - a global first cannot be produced by a row-less shard at all.
func decomposableAggs(in vector.Schema, groupBy []int, aggs []engine.AggSpec) bool {
	for _, a := range aggs {
		switch a.Fn {
		case engine.AggCount:
		case engine.AggSum, engine.AggAvg:
			if in[a.Col].Type == vector.F64 || in[a.Col].Type == vector.Str {
				return false
			}
		case engine.AggMin, engine.AggMax:
			t := in[a.Col].Type
			if t == vector.Str || (t == vector.F64 && len(groupBy) == 0) {
				return false
			}
		case engine.AggFirst:
			if len(groupBy) == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// FragmentSites derives the plan's distribution points: one site per
// base-table scan. Chain climbing stops at shared nodes, plan roots and
// scalar-referenced nodes — their tables are consumed by more than the
// chain above, so the merge result must be preset exactly there.
func FragmentSites(b *Builder) []*FragmentSite {
	refs := b.refCounts()
	parents := make([][]*Node, len(b.nodes))
	for _, n := range b.nodes {
		for _, c := range n.in {
			parents[c.id] = append(parents[c.id], n)
		}
	}
	isRoot := make([]bool, len(b.nodes))
	for _, r := range b.roots {
		isRoot[r.Node.id] = true
	}
	soleParent := func(n *Node) *Node {
		if isRoot[n.id] || refs[n.id] != 1 || len(parents[n.id]) != 1 {
			return nil
		}
		return parents[n.id][0]
	}

	var sites []*FragmentSite
	for _, n := range b.nodes {
		if n.kind != KindScan {
			continue
		}
		chainNodes := []*Node{n}
		frontier := n
		for {
			p := soleParent(frontier)
			if p == nil {
				break
			}
			if p.kind == KindProject || (p.kind == KindSelect && !hasScalarPred(p)) {
				frontier = p
				chainNodes = append(chainNodes, p)
				continue
			}
			break
		}
		var aggNode *Node
		if p := soleParent(frontier); p != nil && p.kind == KindAgg &&
			decomposableAggs(frontier.sch, p.groupBy, p.aggs) {
			aggNode = p
		}
		sites = append(sites, buildSite(b, chainNodes, aggNode))
	}
	return sites
}

// buildSite replays the chain (and optional partial aggregate) into a
// fresh shippable builder. Node labels are copied from the original plan,
// so the shard-side primitive instances key into the FlavorCache under the
// same plan positions as a single-process run — which is what makes
// federated flavor knowledge transferable in both directions.
func buildSite(b *Builder, chainNodes []*Node, aggNode *Node) *FragmentSite {
	scan := chainNodes[0]
	fb := New(b.name)
	cur := fb.Scan(scan.table, scan.cols...)
	cur.label = scan.label
	for _, nd := range chainNodes[1:] {
		switch nd.kind {
		case KindSelect:
			cur = cur.Select(nd.preds...)
		case KindProject:
			cur = cur.Project(nd.exprs...)
		}
		cur.label = nd.label
	}
	site := &FragmentSite{
		Node:  chainNodes[len(chainNodes)-1],
		Table: scan.table.Name,
		merge: MergeConcat,
	}
	if aggNode != nil {
		var partial []engine.AggSpec
		col := len(aggNode.groupBy)
		for _, a := range aggNode.aggs {
			if a.Fn == engine.AggAvg {
				// An exact distributed avg ships as sum+count; the merge
				// finalizes float64(sum)/float64(count) exactly like the
				// engine's accumulator does.
				partial = append(partial,
					engine.Agg(engine.AggSum, a.Col, a.As+"$sum"),
					engine.Agg(engine.AggCount, -1, a.As+"$cnt"))
				site.aggs = append(site.aggs, aggMerge{fn: a.Fn, col: col, cntCol: col + 1})
				col += 2
				continue
			}
			partial = append(partial, a)
			site.aggs = append(site.aggs, aggMerge{fn: a.Fn, col: col, cntCol: -1})
			col++
		}
		cur = cur.Agg(aggNode.groupBy, partial...)
		cur.label = aggNode.label
		site.Node = aggNode
		site.merge = MergePartialAgg
		site.groupCols = len(aggNode.groupBy)
	}
	fb.NamedRoot("partial", cur)
	site.Fragment = fb
	return site
}

// MergePartials combines per-shard partial tables (in shard order) into
// the site node's result table. Every partial must carry the fragment
// root's schema; the output carries the site node's schema and label.
// It is the whole-table convenience form of the incremental
// PartialAccumulator, and the buffered fallback path of the coordinator.
func (s *FragmentSite) MergePartials(parts []*engine.Table) (*engine.Table, error) {
	acc := s.NewAccumulator(len(parts))
	for i, p := range parts {
		if err := acc.AddChunk(i, p); err != nil {
			return nil, err
		}
		if err := acc.FinishShard(i); err != nil {
			return nil, err
		}
	}
	return acc.Result()
}

// PartialAccumulator folds per-shard partial chunks into one merged site
// result incrementally, so a streaming coordinator can start merging while
// shards are still producing. It is safe for concurrent use by one
// goroutine per shard.
//
// The ordering contract that makes the merge bit-identical to a
// single-process run is preserved by construction:
//
//   - MergeConcat sites append each chunk to its shard's private column
//     slot as it arrives (chunks from one shard arrive in row order); the
//     final Result concatenates the slots in shard order.
//   - MergePartialAgg sites must discover groups in (shard order, row
//     order) — the global first-seen order of a single-process HashAgg —
//     so chunks queue per shard and fold into the persistent accumulator
//     only when every earlier shard's stream has finished. A finished
//     shard's chunks fold while later shards are still streaming.
//
// A shard whose stream fails mid-flight is discarded with ResetShard and
// may be re-delivered (e.g. through the buffered fallback path) without
// leaking partial rows into the merge: concat slots are private until
// Result, and aggregate chunks are never folded before FinishShard.
type PartialAccumulator struct {
	site   *FragmentSite
	want   vector.Schema // fragment root schema, checked per chunk
	shards int

	mu   sync.Mutex
	done []bool

	// MergeConcat state: one column-buffer set per shard slot.
	slots [][]colBuf

	// MergePartialAgg state: queued chunks per shard, the fold frontier,
	// and the persistent group accumulator.
	pending [][]*engine.Table
	next    int
	fold    *aggFold
}

// NewAccumulator returns an empty accumulator for a fleet of the given
// size.
func (s *FragmentSite) NewAccumulator(shards int) *PartialAccumulator {
	a := &PartialAccumulator{
		site:   s,
		want:   s.Fragment.MainRoot().sch,
		shards: shards,
		done:   make([]bool, shards),
	}
	if s.merge == MergeConcat {
		a.slots = make([][]colBuf, shards)
		for i := range a.slots {
			a.slots[i] = newColBufs(a.want)
		}
	} else {
		a.pending = make([][]*engine.Table, shards)
		a.fold = newAggFold(s)
	}
	return a
}

// AddChunk folds one partial chunk from one shard. Chunks from a single
// shard must arrive in row order; shards may interleave freely.
func (a *PartialAccumulator) AddChunk(shard int, chunk *engine.Table) error {
	if err := schemaMatches(chunk.Sch, a.want); err != nil {
		return fmt.Errorf("plan: merge %s: shard %d: %w", a.site.Node.label, shard, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= a.shards {
		return fmt.Errorf("plan: merge %s: shard %d out of range [0,%d)", a.site.Node.label, shard, a.shards)
	}
	if a.done[shard] {
		return fmt.Errorf("plan: merge %s: chunk after FinishShard(%d)", a.site.Node.label, shard)
	}
	if a.site.merge == MergeConcat {
		for ci := range a.want {
			if err := a.slots[shard][ci].appendRows(chunk.Cols[ci], chunk.Rows()); err != nil {
				return fmt.Errorf("plan: merge %s: shard %d: %w", a.site.Node.label, shard, err)
			}
		}
		return nil
	}
	a.pending[shard] = append(a.pending[shard], chunk)
	return nil
}

// FinishShard marks a shard's stream complete. For aggregate sites it
// advances the fold frontier: every queued chunk of every consecutive
// finished shard folds into the group accumulator, in shard order.
func (a *PartialAccumulator) FinishShard(shard int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= a.shards {
		return fmt.Errorf("plan: merge %s: shard %d out of range [0,%d)", a.site.Node.label, shard, a.shards)
	}
	if a.done[shard] {
		return fmt.Errorf("plan: merge %s: FinishShard(%d) twice", a.site.Node.label, shard)
	}
	a.done[shard] = true
	if a.site.merge != MergePartialAgg {
		return nil
	}
	for a.next < a.shards && a.done[a.next] {
		for _, chunk := range a.pending[a.next] {
			if err := a.fold.foldTable(chunk); err != nil {
				return err
			}
		}
		a.pending[a.next] = nil
		a.next++
	}
	return nil
}

// ResetShard discards everything accumulated for one unfinished shard, so
// a failed stream can be retried (buffered or streaming) from scratch.
func (a *PartialAccumulator) ResetShard(shard int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= a.shards {
		return fmt.Errorf("plan: merge %s: shard %d out of range [0,%d)", a.site.Node.label, shard, a.shards)
	}
	if a.done[shard] {
		return fmt.Errorf("plan: merge %s: ResetShard(%d) after FinishShard", a.site.Node.label, shard)
	}
	if a.site.merge == MergeConcat {
		a.slots[shard] = newColBufs(a.want)
		return nil
	}
	a.pending[shard] = nil
	return nil
}

// Result assembles the merged table once every shard has finished.
func (a *PartialAccumulator) Result() (*engine.Table, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, d := range a.done {
		if !d {
			return nil, fmt.Errorf("plan: merge %s: Result before shard %d finished", a.site.Node.label, i)
		}
	}
	if a.site.merge == MergeConcat {
		return a.concatResult()
	}
	return a.fold.result()
}

// concatResult stacks the shard slots in order, preserving global row
// order because shard ranges partition the base table contiguously.
func (a *PartialAccumulator) concatResult() (*engine.Table, error) {
	sch := a.site.Node.sch
	cols := make([]*vector.Vector, len(sch))
	for ci := range sch {
		v, err := concatColumn(a.slots, ci)
		if err != nil {
			return nil, fmt.Errorf("plan: concat %s: %w", a.site.Node.label, err)
		}
		cols[ci] = v
	}
	return engine.NewTable(a.site.Node.label, sch, cols), nil
}

// colBuf accumulates one column of one shard's concatenated partials in
// its native width.
type colBuf struct {
	t   vector.Type
	i16 []int16
	i32 []int32
	i64 []int64
	f64 []float64
	str []string
}

func newColBufs(sch vector.Schema) []colBuf {
	bufs := make([]colBuf, len(sch))
	for i, c := range sch {
		bufs[i].t = c.Type
	}
	return bufs
}

// appendRows appends the first rows values of v.
func (b *colBuf) appendRows(v *vector.Vector, rows int) error {
	switch b.t {
	case vector.I16:
		b.i16 = append(b.i16, v.I16()[:rows]...)
	case vector.I32:
		b.i32 = append(b.i32, v.I32()[:rows]...)
	case vector.I64:
		b.i64 = append(b.i64, v.I64()[:rows]...)
	case vector.F64:
		b.f64 = append(b.f64, v.F64()[:rows]...)
	case vector.Str:
		b.str = append(b.str, v.Str()[:rows]...)
	default:
		return fmt.Errorf("unsupported column type %s", b.t)
	}
	return nil
}

// concatColumn splices column ci of every shard slot, in shard order, into
// one vector.
func concatColumn(slots [][]colBuf, ci int) (*vector.Vector, error) {
	switch t := slots[0][ci].t; t {
	case vector.I16:
		var out []int16
		for si := range slots {
			out = append(out, slots[si][ci].i16...)
		}
		return vector.FromI16(out), nil
	case vector.I32:
		var out []int32
		for si := range slots {
			out = append(out, slots[si][ci].i32...)
		}
		return vector.FromI32(out), nil
	case vector.I64:
		var out []int64
		for si := range slots {
			out = append(out, slots[si][ci].i64...)
		}
		return vector.FromI64(out), nil
	case vector.F64:
		var out []float64
		for si := range slots {
			out = append(out, slots[si][ci].f64...)
		}
		return vector.FromF64(out), nil
	case vector.Str:
		var out []string
		for si := range slots {
			out = append(out, slots[si][ci].str...)
		}
		return vector.FromStr(out), nil
	default:
		return nil, fmt.Errorf("unsupported column type %s", t)
	}
}

func schemaMatches(have, want vector.Schema) error {
	if len(have) != len(want) {
		return fmt.Errorf("schema has %d columns, want %d", len(have), len(want))
	}
	for i := range want {
		if have[i] != want[i] {
			return fmt.Errorf("column %d is %s %s, want %s %s",
				i, have[i].Name, have[i].Type, want[i].Name, want[i].Type)
		}
	}
	return nil
}

// groupKey renders one row's group-by key exactly the way the engine's
// multi-column keying does (stringified values joined by NUL), so any
// group collision behavior is reproduced, not just approximated.
func groupKey(t *engine.Table, groupCols int, row int, sb *strings.Builder) string {
	sb.Reset()
	for ci := 0; ci < groupCols; ci++ {
		if ci > 0 {
			sb.WriteByte(0)
		}
		v := t.Cols[ci]
		switch v.Type() {
		case vector.Str:
			sb.WriteString(v.Str()[row])
		case vector.F64:
			sb.WriteString(strconv.FormatFloat(v.F64()[row], 'g', -1, 64))
		default:
			sb.WriteString(strconv.FormatInt(v.GetI64(row), 10))
		}
	}
	return sb.String()
}

// aggFold is the persistent group accumulator behind MergePartialAgg
// sites. Groups are discovered in (shard order, partial row order) — the
// caller feeds tables in shard order — which equals the global first-seen
// order of a single-process HashAgg; a group's group-column and
// first-aggregate values come from the first partial that contains it.
type aggFold struct {
	site *FragmentSite
	// One accumulator per OUTPUT column: group columns first, then one per
	// original aggregate (avg folds two partial columns into one output).
	accs []partialAcc
	cnts [][]int64 // avg counts, folded separately
	idx  map[string]int
	sb   strings.Builder
}

func newAggFold(s *FragmentSite) *aggFold {
	return &aggFold{
		site: s,
		accs: make([]partialAcc, len(s.Node.sch)),
		cnts: make([][]int64, len(s.aggs)),
		idx:  make(map[string]int),
	}
}

// foldTable folds one partial table's rows into the accumulator.
func (f *aggFold) foldTable(p *engine.Table) error {
	s := f.site
	sch := s.Node.sch
	for row := 0; row < p.Rows(); row++ {
		key := groupKey(p, s.groupCols, row, &f.sb)
		g, seen := f.idx[key]
		if !seen {
			g = len(f.idx)
			f.idx[key] = g
			// Capture first-seen group column values.
			for ci := 0; ci < s.groupCols; ci++ {
				switch sch[ci].Type {
				case vector.I64:
					f.accs[ci].i64 = append(f.accs[ci].i64, p.Cols[ci].I64()[row])
				case vector.F64:
					f.accs[ci].f64 = append(f.accs[ci].f64, p.Cols[ci].F64()[row])
				case vector.Str:
					f.accs[ci].str = append(f.accs[ci].str, p.Cols[ci].Str()[row])
				}
			}
		}
		for ai, m := range s.aggs {
			oc := s.groupCols + ai
			acc := &f.accs[oc]
			switch m.fn {
			case engine.AggAvg:
				if !seen {
					acc.i64 = append(acc.i64, 0)
					f.cnts[ai] = append(f.cnts[ai], 0)
				}
				acc.i64[g] += p.Cols[m.col].I64()[row]
				f.cnts[ai][g] += p.Cols[m.cntCol].I64()[row]
			case engine.AggCount:
				if !seen {
					acc.i64 = append(acc.i64, 0)
				}
				acc.i64[g] += p.Cols[m.col].I64()[row]
			case engine.AggSum:
				if !seen {
					acc.i64 = append(acc.i64, 0)
				}
				acc.i64[g] += p.Cols[m.col].I64()[row]
			case engine.AggMin, engine.AggMax:
				foldMinMax(acc, p.Cols[m.col], row, g, seen, m.fn == engine.AggMin)
			case engine.AggFirst:
				if !seen {
					switch p.Cols[m.col].Type() {
					case vector.I64:
						acc.i64 = append(acc.i64, p.Cols[m.col].I64()[row])
					case vector.F64:
						acc.f64 = append(acc.f64, p.Cols[m.col].F64()[row])
					case vector.Str:
						acc.str = append(acc.str, p.Cols[m.col].Str()[row])
					}
				}
			default:
				return fmt.Errorf("plan: merge %s: unmergeable aggregate %q", s.Node.label, m.fn)
			}
		}
	}
	return nil
}

// result finalizes the fold: avg divides sum by count, everything else
// materializes its native accumulator.
func (f *aggFold) result() (*engine.Table, error) {
	s := f.site
	sch := s.Node.sch
	groups := len(f.idx)
	cols := make([]*vector.Vector, len(sch))
	for ci, c := range sch {
		acc := &f.accs[ci]
		ai := ci - s.groupCols
		if ai >= 0 && s.aggs[ai].fn == engine.AggAvg {
			out := make([]float64, groups)
			for g := 0; g < groups; g++ {
				if n := f.cnts[ai][g]; n > 0 {
					out[g] = float64(acc.i64[g]) / float64(n)
				}
			}
			cols[ci] = vector.FromF64(out)
			continue
		}
		switch c.Type {
		case vector.I64:
			cols[ci] = vector.FromI64(sized(acc.i64, groups))
		case vector.F64:
			cols[ci] = vector.FromF64(sized(acc.f64, groups))
		case vector.Str:
			cols[ci] = vector.FromStr(sized(acc.str, groups))
		default:
			return nil, fmt.Errorf("plan: merge %s: unsupported output type %s", s.Node.label, c.Type)
		}
	}
	return engine.NewTable(s.Node.label, sch, cols), nil
}

// partialAcc accumulates one merged output column in its native domain.
type partialAcc struct {
	i64 []int64
	f64 []float64
	str []string
}

// foldMinMax folds one min/max partial value in the accumulator's native
// numeric domain.
func foldMinMax(acc *partialAcc, v *vector.Vector, row, g int, seen, isMin bool) {
	if v.Type() == vector.F64 {
		x := v.F64()[row]
		if !seen {
			acc.f64 = append(acc.f64, x)
			return
		}
		if (isMin && x < acc.f64[g]) || (!isMin && x > acc.f64[g]) {
			acc.f64[g] = x
		}
		return
	}
	x := v.I64()[row]
	if !seen {
		acc.i64 = append(acc.i64, x)
		return
	}
	if (isMin && x < acc.i64[g]) || (!isMin && x > acc.i64[g]) {
		acc.i64[g] = x
	}
}

// sized pads-or-trims an accumulator to the group count (a group whose
// accumulator never appended — impossible today — would surface as a
// mismatch here rather than as silent corruption).
func sized[T any](v []T, groups int) []T {
	if len(v) != groups {
		out := make([]T, groups)
		copy(out, v)
		return out
	}
	return v
}
