package stats

import (
	"sync"
	"testing"
)

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(8)
	if got := w.Percentile(50); got != 0 {
		t.Errorf("empty window p50 = %v, want 0", got)
	}
	if got := w.Max(); got != 0 {
		t.Errorf("empty window max = %v, want 0", got)
	}
	if w.Len() != 0 || w.Count() != 0 {
		t.Errorf("empty window len=%d count=%d", w.Len(), w.Count())
	}
}

func TestWindowSingleSample(t *testing.T) {
	w := NewWindow(4)
	w.Add(7)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := w.Percentile(p); got != 7 {
			t.Errorf("p%v = %v, want 7", p, got)
		}
	}
}

// TestWindowMatchesBatchBeforeWrap pins the contract that a non-full
// window computes exactly what the batch Percentile computes.
func TestWindowMatchesBatchBeforeWrap(t *testing.T) {
	w := NewWindow(100)
	var xs []float64
	for i := 0; i < 37; i++ {
		x := float64((i * 31) % 17)
		w.Add(x)
		xs = append(xs, x)
	}
	for _, p := range []float64{0, 25, 50, 90, 95, 99, 100} {
		if got, want := w.Percentile(p), Percentile(xs, p); got != want {
			t.Errorf("p%v = %v, batch = %v", p, got, want)
		}
	}
}

// TestWindowEvictsOldest is the wrap-around boundary: once capacity
// samples have passed, only the newest capacity-many remain.
func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 10; i++ {
		w.Add(float64(i))
	}
	// Window holds {7, 8, 9, 10}.
	if got := w.Percentile(0); got != 7 {
		t.Errorf("min of window = %v, want 7", got)
	}
	if got := w.Percentile(100); got != 10 {
		t.Errorf("max of window = %v, want 10", got)
	}
	if got := w.Max(); got != 10 {
		t.Errorf("Max = %v, want 10", got)
	}
	if w.Len() != 4 {
		t.Errorf("len = %d, want 4", w.Len())
	}
	if w.Count() != 10 {
		t.Errorf("count = %d, want 10", w.Count())
	}
}

// TestWindowExactlyFull is the boundary between append and overwrite: a
// window filled to exactly capacity holds everything.
func TestWindowExactlyFull(t *testing.T) {
	w := NewWindow(3)
	w.Add(3)
	w.Add(1)
	w.Add(2)
	if got, want := w.Percentile(50), 2.0; got != want {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	w.Add(10) // evicts 3; window {1, 2, 10}
	if got, want := w.Percentile(0), 1.0; got != want {
		t.Errorf("p0 after first eviction = %v, want %v", got, want)
	}
}

func TestWindowCapacityFloor(t *testing.T) {
	w := NewWindow(0)
	w.Add(1)
	w.Add(2)
	if got := w.Percentile(50); got != 2 {
		t.Errorf("capacity-1 window p50 = %v, want newest sample 2", got)
	}
}

func TestWindowPercentiles(t *testing.T) {
	w := NewWindow(16)
	for i := 1; i <= 10; i++ {
		w.Add(float64(i))
	}
	got := w.Percentiles(0, 50, 100)
	want := []float64{1, 5.5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestWindowConcurrentAdd exercises the lock under -race: a metrics
// window sees adds from every request goroutine.
func TestWindowConcurrentAdd(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Add(float64(g*100 + i))
				_ = w.Percentile(99)
			}
		}(g)
	}
	wg.Wait()
	if w.Count() != 800 {
		t.Errorf("count = %d, want 800", w.Count())
	}
	if w.Len() != 64 {
		t.Errorf("len = %d, want 64", w.Len())
	}
}

func TestWindowMerge(t *testing.T) {
	a, b := NewWindow(8), NewWindow(8)
	for i := 1; i <= 4; i++ {
		a.Add(float64(i))      // a: 1 2 3 4
		b.Add(float64(i * 10)) // b: 10 20 30 40
	}
	a.Merge(b)
	if a.Len() != 8 {
		t.Fatalf("merged len = %d, want 8", a.Len())
	}
	if got := a.Percentile(100); got != 40 {
		t.Errorf("merged max = %v, want 40", got)
	}
	if got := a.Percentile(0); got != 1 {
		t.Errorf("merged min = %v, want 1", got)
	}
}

func TestWindowMergeWrappedRing(t *testing.T) {
	// other's ring has wrapped; Merge must unwind oldest-first so the
	// receiver's eviction order stays chronological.
	other := NewWindow(4)
	for i := 1; i <= 6; i++ {
		other.Add(float64(i)) // holds 3 4 5 6, ring-rotated
	}
	w := NewWindow(4)
	w.Merge(other)
	// Receiver capacity 4 and 4 merged samples: exactly 3 4 5 6, and a
	// subsequent Add must evict the oldest merged sample (3).
	w.Add(7)
	if got := w.Percentile(0); got != 4 {
		t.Errorf("post-merge eviction dropped %v, want oldest (3) gone, min 4", got)
	}
	if got := w.Percentile(100); got != 7 {
		t.Errorf("merged+added max = %v, want 7", got)
	}
}

func TestWindowMergeSelfAndNil(t *testing.T) {
	w := NewWindow(4)
	w.Add(1)
	w.Merge(nil)
	w.Merge(w)
	if w.Len() != 1 {
		t.Errorf("self/nil merge changed len to %d", w.Len())
	}
}

func TestWindowMergeConcurrent(t *testing.T) {
	dst := NewWindow(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		src := NewWindow(64)
		for i := 0; i < 64; i++ {
			src.Add(float64(i))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst.Merge(src)
		}()
	}
	wg.Wait()
	if dst.Len() != 256 {
		t.Errorf("concurrent merge len = %d, want 256", dst.Len())
	}
}
