package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Error("geomean(2,8) != 4")
	}
	if !almost(GeoMean([]float64{1, 1, 1}), 1) {
		t.Error("geomean of ones != 1")
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Error("degenerate geomean should be 0")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint8) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMaxSum(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 || Sum(xs) != 6 {
		t.Error("basic stats wrong")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty min/max should be infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{40, 10, 20, 30} // unsorted on purpose
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %v, want 10", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("p100 = %v, want 40", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Errorf("p50 = %v, want 25 (interpolated)", got)
	}
	if got := Percentile(xs, 75); got != 32.5 {
		t.Errorf("p75 = %v, want 32.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 95) != 7 {
		t.Error("single element percentile")
	}
	if xs[0] != 40 {
		t.Error("Percentile must not mutate its input")
	}
}

func TestResample(t *testing.T) {
	up := Resample([]float64{0, 10}, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if !almost(up[i], want[i]) {
			t.Fatalf("up[%d] = %v, want %v", i, up[i], want[i])
		}
	}
	down := Resample([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3)
	if !almost(down[0], 1) || !almost(down[2], 9) {
		t.Errorf("down = %v", down)
	}
	if Resample(nil, 4) != nil {
		t.Error("resample of nil should be nil")
	}
	one := Resample([]float64{7}, 3)
	if one[0] != 7 || one[2] != 7 {
		t.Error("resample of singleton should repeat")
	}
}

// TestPercentileBoundaries pins the edge behavior the latency reporting
// relies on: clamping outside [0,100], tiny inputs, and exact two-element
// interpolation.
func TestPercentileBoundaries(t *testing.T) {
	two := []float64{10, 20}
	cases := []struct {
		p    float64
		want float64
	}{
		{-5, 10},                         // below range clamps to the minimum
		{0, 10},                          // p0 is the minimum
		{25, 12.5}, {50, 15}, {75, 17.5}, // linear between the two ranks
		{100, 20}, // p100 is the maximum
		{250, 20}, // above range clamps to the maximum
	}
	for _, c := range cases {
		if got := Percentile(two, c.p); !almost(got, c.want) {
			t.Errorf("two-element p%v = %v, want %v", c.p, got, c.want)
		}
	}
	single := []float64{7}
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(single, p); got != 7 {
			t.Errorf("single-element p%v = %v, want 7", p, got)
		}
	}
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(nil, p); got != 0 {
			t.Errorf("empty p%v = %v, want 0", p, got)
		}
	}
}

// TestResampleBoundaries pins the degenerate shapes: zero/negative targets,
// single-point targets, and exact endpoint preservation for two elements.
func TestResampleBoundaries(t *testing.T) {
	if Resample([]float64{1, 2}, 0) != nil {
		t.Error("n=0 should yield nil")
	}
	if Resample([]float64{1, 2}, -3) != nil {
		t.Error("n<0 should yield nil")
	}
	if got := Resample([]float64{3, 9}, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("n=1 = %v, want [3] (the first point)", got)
	}
	got := Resample([]float64{3, 9}, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Errorf("two-to-two = %v, want endpoints preserved", got)
	}
	up := Resample([]float64{3, 9}, 4)
	if up[0] != 3 || up[3] != 9 {
		t.Errorf("upsample endpoints = %v, want 3..9", up)
	}
	for i := 1; i < len(up); i++ {
		if up[i] <= up[i-1] {
			t.Errorf("upsample of increasing pair not monotone: %v", up)
		}
	}
}

func TestASCIIChart(t *testing.T) {
	out := ASCIIChart("title", []Series{
		{Name: "up", Values: []float64{1, 2, 3}},
		{Name: "down", Values: []float64{3, 2, 1}},
	}, 24, 6)
	if !strings.Contains(out, "title") || !strings.Contains(out, "*=up") || !strings.Contains(out, "+=down") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 8 {
		t.Error("chart too short")
	}
	// Degenerate inputs must not panic.
	_ = ASCIIChart("flat", []Series{{Name: "c", Values: []float64{5, 5}}}, 10, 4)
	_ = ASCIIChart("empty", nil, 10, 4)
	_ = ASCIIChart("nan", []Series{{Name: "n", Values: []float64{math.NaN(), math.Inf(1)}}}, 10, 4)
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Error("missing header rule")
	}
	if FormatTable(nil) != "" {
		t.Error("empty table should render empty")
	}
}
