// Package stats provides the small numeric and rendering helpers shared by
// the experiment harness: geometric means, series resampling, and ASCII
// charts used to render the paper's figures in a terminal.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs; 0 if xs is empty or any value
// is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs; 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs; +Inf if empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf if empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs by linear
// interpolation between closest ranks; 0 if xs is empty. xs is not
// modified. The latency reporting of the concurrent query service uses it
// for p50/p95/p99.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Resample linearly resamples xs to n points (n >= 2). It is used to
// overlay APH series of different bucket counts on one chart.
func Resample(xs []float64, n int) []float64 {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if len(xs) == 1 {
		for i := range out {
			out[i] = xs[0]
		}
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(xs)-1) / float64(max(n-1, 1))
		lo := int(pos)
		hi := lo + 1
		if hi >= len(xs) {
			out[i] = xs[len(xs)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = xs[lo]*(1-frac) + xs[hi]*frac
	}
	return out
}

// Series is a named line for ASCII charts.
type Series struct {
	Name   string
	Values []float64
}

// ASCIIChart renders the series as a fixed-size character plot, one marker
// character per series, with a y-axis scale. It approximates the gnuplot
// figures of the paper well enough to eyeball shapes and cross-overs.
func ASCIIChart(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		vals := Resample(s.Values, width)
		mk := markers[si%len(markers)]
		for c, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			r := int((hi - v) / (hi - lo) * float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][c] = mk
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yval := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s|\n", yval, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// FormatTable renders rows as an aligned ASCII table. All rows should have
// the same number of cells; the first row is treated as the header.
func FormatTable(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
