package stats

import "sync"

// Window is a bounded-memory streaming variant of Percentile: it keeps the
// most recent capacity samples in a ring buffer and computes percentiles
// over that sliding window. A soak-length run pushes millions of latencies
// through the server's metrics; the unbounded []float64 the batch
// Percentile wants would grow without limit, while a Window holds exactly
// capacity float64s forever and still tracks the current latency
// distribution (recent-biased, which is what a live /metrics endpoint
// should report anyway).
//
// Window is safe for concurrent use: many request goroutines Add while
// /metrics reads. Percentile copies the window under the lock and sorts
// outside critical work — O(capacity) per scrape, zero cost per Add beyond
// the mutex.
type Window struct {
	mu    sync.Mutex
	buf   []float64
	next  int   // ring position of the next write
	count int64 // total samples ever added
}

// NewWindow returns a window holding the last capacity samples; capacity
// < 1 is rounded up to 1.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, 0, capacity)}
}

// Add records one sample, evicting the oldest once the window is full.
func (w *Window) Add(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, x)
	} else {
		w.buf[w.next] = x
	}
	w.next = (w.next + 1) % cap(w.buf)
	w.count++
}

// Len returns how many samples the window currently holds (<= capacity).
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Count returns how many samples were ever added.
func (w *Window) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Percentile returns the p-th percentile over the samples currently in the
// window, with the same interpolation (and the same empty-input result, 0)
// as the batch Percentile.
func (w *Window) Percentile(p float64) float64 {
	w.mu.Lock()
	snapshot := make([]float64, len(w.buf))
	copy(snapshot, w.buf)
	w.mu.Unlock()
	return Percentile(snapshot, p)
}

// Percentiles computes several percentiles from one snapshot, so a metrics
// scrape reporting p50/p95/p99 pays for one copy instead of three.
func (w *Window) Percentiles(ps ...float64) []float64 {
	w.mu.Lock()
	snapshot := make([]float64, len(w.buf))
	copy(snapshot, w.buf)
	w.mu.Unlock()
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Percentile(snapshot, p)
	}
	return out
}

// Merge adds the samples currently held by other into w, oldest first, so
// the receiver's ring evicts in global-ish chronological order. The
// coordinator uses it to fold per-shard latency windows into one
// fleet-wide distribution for /metrics: percentiles over the merged
// window reflect every shard's recent samples, not just the local tier's.
// Merging a window into itself is a no-op.
func (w *Window) Merge(other *Window) {
	if other == nil || other == w {
		return
	}
	other.mu.Lock()
	snapshot := make([]float64, len(other.buf))
	// Unwind the ring: oldest sample first. When the buffer is not yet
	// full, next == len(buf) and the copy below is identity order.
	if len(other.buf) < cap(other.buf) {
		copy(snapshot, other.buf)
	} else {
		n := copy(snapshot, other.buf[other.next:])
		copy(snapshot[n:], other.buf[:other.next])
	}
	other.mu.Unlock()
	for _, x := range snapshot {
		w.Add(x)
	}
}

// Max returns the maximum sample currently in the window; 0 when empty
// (matching Percentile's empty-input convention rather than Min/Max's
// infinities, since this feeds a metrics report).
func (w *Window) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) == 0 {
		return 0
	}
	m := w.buf[0]
	for _, x := range w.buf[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
