package microadapt_test

import (
	"math/rand"
	"testing"

	"microadapt/internal/bench"
	"microadapt/internal/core"
	"microadapt/internal/hw"
	"microadapt/internal/primitive"
	"microadapt/internal/vector"
)

// benchConfig keeps the per-iteration cost of `go test -bench` reasonable:
// experiments run at a reduced scale factor (shapes are scale-free).
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.SF = 0.01
	return cfg
}

// runExperiment executes one paper experiment per iteration and reports
// nothing but wall time — the regeneration cost of that table/figure.
func runExperiment(b *testing.B, id string) {
	cfg := benchConfig()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkTable1StageBreakdown(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkFig1BranchVsSelectivity(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig2Q12Trace(b *testing.B)            { runExperiment(b, "fig2") }
func BenchmarkFig4CompilerAPH(b *testing.B)         { runExperiment(b, "fig4") }
func BenchmarkFig5MergejoinMachines(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6BloomFission(b *testing.B)        { runExperiment(b, "fig6") }
func BenchmarkTable4Unrolling(b *testing.B)         { runExperiment(b, "table4") }
func BenchmarkFig8FullComputation(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig10VWGreedyDemo(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkTable5MABComparison(b *testing.B)     { runExperiment(b, "table5") }
func BenchmarkTable6Branching(b *testing.B)         { runExperiment(b, "table6") }
func BenchmarkTable7Compilers(b *testing.B)         { runExperiment(b, "table7") }
func BenchmarkTable8LoopFission(b *testing.B)       { runExperiment(b, "table8") }
func BenchmarkTable9FullComputation(b *testing.B)   { runExperiment(b, "table9") }
func BenchmarkTable10Unrolling(b *testing.B)        { runExperiment(b, "table10") }
func BenchmarkFig11AdaptiveAPH(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkTable11TPCH(b *testing.B)             { runExperiment(b, "table11") }

// Wall-clock micro-benchmarks of the real Go flavor implementations: on
// the host CPU, branching vs no-branching selection genuinely differ with
// selectivity (the Figure 1 effect, measured rather than modelled).

func wallClockSelection(b *testing.B, branching bool, selPct int) {
	d := primitive.NewDictionary(primitive.BranchSet())
	s := core.NewSession(d, hw.Machine1(), core.WithVectorSize(1024))
	inst := s.Instance("select_<_sint_col_sint_val", "wall")
	arm := 0
	if !branching {
		arm = 1
	}
	fl := inst.Prim.Flavors[arm]
	rng := rand.New(rand.NewSource(7))
	n := 1024
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(100))
	}
	out := make([]int32, n)
	threshold := vector.ConstI32(int32(selPct))
	call := &core.Call{N: n, In: []*vector.Vector{vector.FromI32(col), threshold}, SelOut: out, Inst: inst}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Fn(s.Ctx, call)
	}
}

func BenchmarkWallClockBranchingSel1(b *testing.B)    { wallClockSelection(b, true, 1) }
func BenchmarkWallClockBranchingSel50(b *testing.B)   { wallClockSelection(b, true, 50) }
func BenchmarkWallClockBranchingSel99(b *testing.B)   { wallClockSelection(b, true, 99) }
func BenchmarkWallClockNoBranchingSel1(b *testing.B)  { wallClockSelection(b, false, 1) }
func BenchmarkWallClockNoBranchingSel50(b *testing.B) { wallClockSelection(b, false, 50) }
func BenchmarkWallClockNoBranchingSel99(b *testing.B) { wallClockSelection(b, false, 99) }

// Ablation benchmarks for the vw-greedy design choices called out in
// DESIGN.md §6. Each replays the same non-stationary two-arm scenario and
// reports achieved-cost/OPT as cost_over_opt (lower is better, 1.0 = OPT).

type abScenario struct {
	calls int
}

func (sc abScenario) cost(arm, call int) float64 {
	// Arm 0 best in the first and last third, arm 1 best in the middle.
	third := sc.calls / 3
	if call >= third && call < 2*third {
		return []float64{6, 3}[arm]
	}
	return []float64{3, 6}[arm]
}

func (sc abScenario) run(ch core.Chooser) float64 {
	var total float64
	for call := 0; call < sc.calls; call++ {
		arm := ch.Choose(core.ChooseContext{})
		c := sc.cost(arm, call)
		ch.Observe(core.Observation{Arm: arm, Tuples: 100, Cycles: c * 100})
		total += c
	}
	return total / (3 * float64(sc.calls)) // OPT = 3 per call
}

func ablation(b *testing.B, mk func() core.Chooser) {
	sc := abScenario{calls: 30000}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = sc.run(mk())
	}
	b.ReportMetric(ratio, "cost_over_opt")
}

func BenchmarkAblationVWGreedyFull(b *testing.B) {
	ablation(b, func() core.Chooser {
		return core.NewVWGreedy(2, core.DefaultVWParams(), rand.New(rand.NewSource(1)))
	})
}

// Recent-window mean (vw-greedy) vs all-history mean (eps-greedy): the
// windowed mean recovers after the scenario flips; the global mean lags.
func BenchmarkAblationGlobalMeanEpsGreedy(b *testing.B) {
	ablation(b, func() core.Chooser {
		return core.NewEpsGreedy(2, 0.01, rand.New(rand.NewSource(1)))
	})
}

// Deterministic explore/exploit pattern vs committing early (eps-first).
func BenchmarkAblationEpsFirstCommits(b *testing.B) {
	ablation(b, func() core.Chooser {
		return core.NewEpsFirst(2, 0.01, 30000, rand.New(rand.NewSource(1)))
	})
}

// Initial sweep off: cold starts rely on random exploration only.
func BenchmarkAblationNoInitialSweep(b *testing.B) {
	p := core.DefaultVWParams()
	p.InitialSweep = false
	ablation(b, func() core.Chooser {
		return core.NewVWGreedy(2, p, rand.New(rand.NewSource(1)))
	})
}

// Warmup skip off: measurement windows include the instruction-cache-miss
// calls the paper excludes.
func BenchmarkAblationNoWarmupSkip(b *testing.B) {
	p := core.DefaultVWParams()
	p.WarmupSkip = 0
	ablation(b, func() core.Chooser {
		return core.NewVWGreedy(2, p, rand.New(rand.NewSource(1)))
	})
}

// APH overhead: the cost of the 512-bucket history maintenance per call.
func BenchmarkAPHOverheadPerCall(b *testing.B) {
	d := core.NewDictionary()
	d.AddFlavor("p", hw.ClassMapArith, &core.Flavor{
		Name: "noop",
		Fn:   func(ctx *core.ExecCtx, c *core.Call) (int, float64) { return c.N, 1 },
	})
	s := core.NewSession(d, hw.Machine1())
	inst := s.Instance("p", "aph")
	call := &core.Call{N: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Run(s.Ctx, call)
	}
}
