package microadapt_test

import (
	"strings"
	"testing"

	"microadapt"
)

func TestFacadeQuickstart(t *testing.T) {
	sess := microadapt.NewSession(
		microadapt.AllFlavors(),
		microadapt.Machine1(),
		microadapt.WithVectorSize(64),
		microadapt.WithSeed(1),
	)
	db := microadapt.GenerateTPCH(0.002, 1)
	tab, err := microadapt.RunQuery(db, sess, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 1 {
		t.Fatalf("Q6 rows = %d", tab.Rows())
	}
	out := microadapt.FormatTable(tab, 5)
	if !strings.Contains(out, "revenue") {
		t.Errorf("formatted output: %q", out)
	}
	if sess.Ctx.PrimCycles <= 0 {
		t.Error("no primitive cycles recorded")
	}
	if len(sess.Instances()) == 0 {
		t.Error("no instances created")
	}
}

// TestFacadeParallelSession: the facade's chooser factories must compose
// with WithParallelism — fragment choosers run on concurrent goroutines, so
// a factory sharing one rand across choosers would race (run with -race)
// — and parallel results must equal serial ones.
func TestFacadeParallelSession(t *testing.T) {
	db := microadapt.GenerateTPCH(0.005, 1)
	mk := func(p int) *microadapt.Session {
		return microadapt.NewSession(
			microadapt.AllFlavors(),
			microadapt.Machine1(),
			microadapt.WithVectorSize(64),
			microadapt.WithSeed(1),
			microadapt.WithChooser(microadapt.VWGreedyChooser(microadapt.DefaultVWParams(), 7)),
			microadapt.WithParallelism(p),
		)
	}
	serial, err := microadapt.RunQuery(db, mk(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	sess := mk(4)
	parallel, err := microadapt.RunQuery(db, sess, 1)
	if err != nil {
		t.Fatal(err)
	}
	if microadapt.FormatTable(parallel, 0) != microadapt.FormatTable(serial, 0) {
		t.Error("parallel facade result differs from serial")
	}
	if len(sess.Fragments()) == 0 {
		t.Error("parallel session spawned no fragments")
	}
}

func TestFacadeChoosers(t *testing.T) {
	for _, factory := range []microadapt.ChooserFactory{
		microadapt.VWGreedyChooser(microadapt.DefaultVWParams(), 1),
		microadapt.HeuristicsChooser(microadapt.Machine1()),
		microadapt.FixedChooser(0),
	} {
		ch := factory(3)
		if ch == nil || ch.Name() == "" {
			t.Error("factory produced an invalid chooser")
		}
	}
}

func TestFacadeMachines(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []*microadapt.Machine{
		microadapt.Machine1(), microadapt.Machine2(), microadapt.Machine3(), microadapt.Machine4(),
	} {
		names[m.Name] = true
	}
	if len(names) != 4 {
		t.Error("four distinct machines expected")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := microadapt.ExperimentIDs()
	if len(ids) != 22 {
		t.Errorf("experiment ids = %d, want 22", len(ids))
	}
	cfg := microadapt.DefaultExperimentConfig()
	cfg.SF = 0.002
	rep, err := microadapt.RunExperiment(cfg, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig5" {
		t.Error("wrong report")
	}
	if _, err := microadapt.RunExperiment(cfg, "bogus"); err == nil {
		t.Error("bogus experiment should error")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Error("error should name the id")
	}
}

func TestFacadePolicyRegistry(t *testing.T) {
	names := microadapt.PolicyNames()
	if len(names) != len(microadapt.Policies()) {
		t.Error("PolicyNames and Policies disagree")
	}
	for _, want := range []string{"vw-greedy", "eps-greedy", "ucb1", "thompson", "fixed", "heuristics"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	// Every registered name resolves through PolicyChooser and produces
	// working choosers.
	for _, name := range names {
		f, err := microadapt.PolicyChooser(name, microadapt.Machine1(), 1)
		if err != nil {
			t.Fatalf("PolicyChooser(%s): %v", name, err)
		}
		ch := f(3)
		if ch == nil || ch.Name() == "" {
			t.Errorf("policy %s produced an invalid chooser", name)
		}
		if arm := ch.Choose(microadapt.ChooseContext{}); arm < 0 || arm >= 3 {
			t.Errorf("policy %s chose out-of-range arm %d", name, arm)
		}
	}
	// Parameterized specs and error reporting.
	if _, err := microadapt.PolicyChooser("vw-greedy:explore=256,exploit=8,len=2", microadapt.Machine1(), 1); err != nil {
		t.Errorf("parameterized spec rejected: %v", err)
	}
	if _, err := microadapt.PolicyChooser("nope", microadapt.Machine1(), 1); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := microadapt.PolicyChooser("ucb1:bogus=1", microadapt.Machine1(), 1); err == nil {
		t.Error("unknown parameter should error")
	}
}

func TestFacadeService(t *testing.T) {
	db := microadapt.GenerateTPCH(0.002, 3)
	cfg := microadapt.DefaultServiceConfig()
	cfg.Workers = 2
	cfg.Seed = 5
	svc := microadapt.NewService(db, cfg)
	m, err := svc.RunLoad(microadapt.LoadConfig{Mix: []int{6, 12}, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 8 || m.Errors != 0 {
		t.Errorf("jobs=%d errors=%d", m.Jobs, m.Errors)
	}
	if svc.Cache().Len() == 0 {
		t.Error("service cache should hold learned flavor knowledge")
	}
}

func TestFacadeRunAllQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	sess := microadapt.NewSession(microadapt.DefaultFlavors(), microadapt.Machine4(),
		microadapt.WithVectorSize(64), microadapt.WithSeed(2))
	db := microadapt.GenerateTPCH(0.002, 3)
	if err := microadapt.RunAllQueries(db, sess); err != nil {
		t.Fatal(err)
	}
}

// TestFacadePlanBuilder: the declarative plan layer is reachable through
// the facade — build a custom plan, explain it, run it serially and
// parallel with identical results.
func TestFacadePlanBuilder(t *testing.T) {
	db := microadapt.GenerateTPCH(0.005, 1)
	build := func() *microadapt.PlanBuilder {
		b := microadapt.NewPlan("facade")
		sel := b.Scan(db.Lineitem, "l_quantity", "l_extendedprice").
			Select(microadapt.PlanCmpVal(0, "<", 25))
		b.Root(sel.Agg(nil, microadapt.Agg(microadapt.AggSum, 1, "total")))
		return b
	}
	explain := build().Explain(4)
	if !strings.Contains(explain, "facade/sel0") || !strings.Contains(explain, "physical (out, P=4)") {
		t.Errorf("explain output incomplete:\n%s", explain)
	}
	var serial string
	for _, p := range []int{1, 4} {
		sess := microadapt.NewSession(microadapt.AllFlavors(), microadapt.Machine1(),
			microadapt.WithVectorSize(64), microadapt.WithSeed(2), microadapt.WithParallelism(p))
		b := build()
		tab, err := b.Bind(sess).Run(b.MainRoot())
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		out := microadapt.FormatTable(tab, 0)
		if p == 1 {
			serial = out
		} else if out != serial {
			t.Error("parallel plan result differs from serial")
		}
	}
}

// TestFacadeExplainQuery: the 22 built-in queries explain through the
// facade with partition annotations at P>1.
func TestFacadeExplainQuery(t *testing.T) {
	db := microadapt.GenerateTPCH(0.005, 1)
	out := microadapt.ExplainQuery(db, 6, 4)
	if !strings.Contains(out, "morsel fragments") {
		t.Errorf("Q6 at P=4 shows no fan-out:\n%s", out)
	}
}
